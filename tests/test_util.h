// Shared helpers for CAQP tests: small random datasets with injected
// correlations and brute-force probability computations to validate the
// estimators and planners against.

#ifndef CAQP_TESTS_TEST_UTIL_H_
#define CAQP_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "core/dataset.h"
#include "core/query.h"
#include "prob/subproblem.h"

namespace caqp {
namespace testing_util {

/// A small schema with mixed domain sizes and costs.
inline Schema SmallSchema() {
  Schema s;
  s.AddAttribute("cheap0", 4, 1.0);
  s.AddAttribute("cheap1", 6, 2.0);
  s.AddAttribute("exp0", 4, 50.0);
  s.AddAttribute("exp1", 5, 80.0);
  return s;
}

/// Random dataset over `schema` where attribute i>0 is correlated with
/// attribute 0 (value tends to track attr0 scaled into its domain), so
/// conditional planners have something to exploit.
inline Dataset CorrelatedDataset(const Schema& schema, size_t rows,
                                 uint64_t seed, double noise = 0.25) {
  Rng rng(seed);
  Dataset ds(schema);
  Tuple t(schema.num_attributes());
  for (size_t r = 0; r < rows; ++r) {
    const uint32_t k0 = schema.domain_size(0);
    const auto base = static_cast<uint32_t>(rng.UniformInt(0, k0 - 1));
    t[0] = static_cast<Value>(base);
    for (size_t a = 1; a < schema.num_attributes(); ++a) {
      const uint32_t k = schema.domain_size(static_cast<AttrId>(a));
      uint32_t v;
      if (rng.Bernoulli(noise)) {
        v = static_cast<uint32_t>(rng.UniformInt(0, k - 1));
      } else {
        v = base * k / k0;
        if (v >= k) v = k - 1;
      }
      t[a] = static_cast<Value>(v);
    }
    ds.Append(t);
  }
  return ds;
}

/// Fully independent uniform dataset.
inline Dataset UniformDataset(const Schema& schema, size_t rows,
                              uint64_t seed) {
  Rng rng(seed);
  Dataset ds(schema);
  Tuple t(schema.num_attributes());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      t[a] = static_cast<Value>(
          rng.UniformInt(0, schema.domain_size(static_cast<AttrId>(a)) - 1));
    }
    ds.Append(t);
  }
  return ds;
}

/// Rows of `ds` matching every range, by brute force.
inline std::vector<RowId> BruteForceRows(const Dataset& ds,
                                         const RangeVec& ranges) {
  std::vector<RowId> rows;
  for (RowId r = 0; r < ds.num_rows(); ++r) {
    bool ok = true;
    for (size_t a = 0; a < ranges.size(); ++a) {
      const Value v = ds.at(r, static_cast<AttrId>(a));
      if (v < ranges[a].lo || v > ranges[a].hi) {
        ok = false;
        break;
      }
    }
    if (ok) rows.push_back(r);
  }
  return rows;
}

/// Random valid sub-ranges of the schema's domains.
inline RangeVec RandomRanges(const Schema& schema, Rng& rng,
                             double narrow_probability = 0.5) {
  RangeVec ranges = schema.FullRanges();
  for (size_t a = 0; a < ranges.size(); ++a) {
    if (!rng.Bernoulli(narrow_probability)) continue;
    const uint32_t k = schema.domain_size(static_cast<AttrId>(a));
    const Value lo = static_cast<Value>(rng.UniformInt(0, k - 1));
    const Value hi = static_cast<Value>(rng.UniformInt(lo, k - 1));
    ranges[a] = ValueRange{lo, hi};
  }
  return ranges;
}

/// Random conjunctive query over a subset of attributes.
inline Query RandomConjunctiveQuery(const Schema& schema, Rng& rng,
                                    size_t max_preds = 3) {
  Conjunct preds;
  std::vector<AttrId> attrs;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    attrs.push_back(static_cast<AttrId>(a));
  }
  // Shuffle attribute choice.
  for (size_t i = attrs.size(); i > 1; --i) {
    std::swap(attrs[i - 1],
              attrs[static_cast<size_t>(rng.UniformInt(0, i - 1))]);
  }
  const size_t n =
      1 + static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(
                     std::min(max_preds, attrs.size())) - 1));
  for (size_t i = 0; i < n; ++i) {
    const AttrId a = attrs[i];
    const uint32_t k = schema.domain_size(a);
    Value lo = static_cast<Value>(rng.UniformInt(0, k - 1));
    Value hi = static_cast<Value>(rng.UniformInt(lo, k - 1));
    // Avoid trivially-true predicates covering the whole domain.
    if (lo == 0 && hi == k - 1) hi = static_cast<Value>(k - 2);
    preds.emplace_back(a, lo, hi, rng.Bernoulli(0.3));
  }
  return Query::Conjunction(std::move(preds));
}

/// Enumerates every tuple of the (small!) schema and checks that the plan's
/// verdict matches the query everywhere. Returns the number of mismatches.
template <typename PlanT>
size_t CountVerdictMismatches(const PlanT& plan, const Query& query,
                              const Schema& schema) {
  size_t mismatches = 0;
  Tuple t(schema.num_attributes(), 0);
  // Odometer enumeration.
  while (true) {
    if (plan.VerdictFor(t) != query.Matches(t)) ++mismatches;
    size_t a = 0;
    for (; a < t.size(); ++a) {
      if (++t[a] < schema.domain_size(static_cast<AttrId>(a))) break;
      t[a] = 0;
    }
    if (a == t.size()) break;
  }
  return mismatches;
}

}  // namespace testing_util
}  // namespace caqp

#endif  // CAQP_TESTS_TEST_UTIL_H_
