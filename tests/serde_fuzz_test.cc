// Deterministic byte-mutation fuzzing of the plan wire format: plans arrive
// over a lossy, corrupting radio, so DeserializePlan must reject or safely
// accept ANY mutation of a valid encoding — never crash, never install a
// malformed plan. Run under ASan in scripts/check.sh to catch OOB reads the
// Status paths might hide.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "net/mote.h"
#include "opt/greedyseq.h"
#include "opt/optseq.h"
#include "plan/plan_serde.h"
#include "plan/plan_verify.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

/// Applies one seeded mutation (bit flips, truncation, or extension) to a
/// copy of `bytes`.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& bytes, Rng& rng) {
  std::vector<uint8_t> out = bytes;
  switch (rng.UniformInt(0, 2)) {
    case 0: {  // flip 1-4 random bits
      const int flips = static_cast<int>(rng.UniformInt(1, 4));
      for (int i = 0; i < flips && !out.empty(); ++i) {
        const size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
        out[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
      }
      break;
    }
    case 1: {  // truncate to a random prefix
      out.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(out.size()))));
      break;
    }
    default: {  // append random garbage
      const int extra = static_cast<int>(rng.UniformInt(1, 16));
      for (int i = 0; i < extra; ++i) {
        out.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
      }
      break;
    }
  }
  return out;
}

/// A small corpus of structurally diverse valid plans.
std::vector<Plan> BuildCorpus(const Schema& schema) {
  std::vector<Plan> corpus;
  corpus.emplace_back(PlanNode::Verdict(true));
  corpus.emplace_back(PlanNode::Sequential(
      {Predicate(0, 1, 2), Predicate(2, 0, 1), Predicate(3, 2, 4, true)}));
  corpus.emplace_back(PlanNode::Split(
      0, 2,
      PlanNode::Sequential({Predicate(2, 1, 3)}),
      PlanNode::Split(1, 3, PlanNode::Verdict(false),
                      PlanNode::Sequential({Predicate(3, 0, 2)}))));
  const Query q =
      Query::Conjunction({Predicate(1, 1, 4), Predicate(2, 0, 2)});
  corpus.emplace_back(PlanNode::Generic(q, {1, 2}));
  (void)schema;
  return corpus;
}

TEST(SerdeFuzzTest, MutatedPlanBytesNeverCrashOrInstallMalformedPlans) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const std::vector<Plan> corpus = BuildCorpus(schema);

  size_t accepted = 0, rejected = 0;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    for (const Plan& plan : corpus) {
      const std::vector<uint8_t> bytes = SerializePlan(plan);
      for (int round = 0; round < 40; ++round) {
        const std::vector<uint8_t> mutated = Mutate(bytes, rng);
        Mote mote(0, schema, cm, [](size_t, AttrId) { return Value{0}; });
        const Status st = mote.ReceivePlanBytes(mutated);
        if (st.ok()) {
          ++accepted;
          // Whatever survived decoding must be a fully valid plan...
          ASSERT_TRUE(mote.has_plan());
          ASSERT_NE(mote.installed_plan(), nullptr);
          EXPECT_TRUE(PlanIsWellFormed(*mote.installed_plan(), schema));
          // ...and executable without tripping any executor invariant.
          EXPECT_TRUE(mote.RunEpoch(0).has_value());
        } else {
          ++rejected;
          EXPECT_FALSE(mote.has_plan());
        }
      }
    }
  }
  // The corpus and mutation mix must actually exercise both paths.
  EXPECT_GT(accepted, 0u);  // some bit flips still decode to valid plans
  EXPECT_GT(rejected, 500u);
}

TEST(SerdeFuzzTest, RejectedBytesKeepThePreviousPlan) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Mote mote(0, schema, cm, [](size_t, AttrId) { return Value{1}; });
  const Plan good(PlanNode::Sequential({Predicate(0, 1, 1)}));
  ASSERT_TRUE(mote.ReceivePlanBytes(SerializePlan(good)).ok());

  Rng rng(5);
  const std::vector<uint8_t> bytes = SerializePlan(good);
  size_t rejections = 0;
  for (int round = 0; round < 200; ++round) {
    const std::vector<uint8_t> mutated = Mutate(bytes, rng);
    if (!mote.ReceivePlanBytes(mutated).ok()) {
      ++rejections;
      // The pre-mutation plan stays active and keeps producing verdicts.
      ASSERT_TRUE(mote.has_plan());
      EXPECT_TRUE(PlanIsWellFormed(*mote.installed_plan(), schema));
    }
  }
  EXPECT_GT(rejections, 0u);
  // A mutation may have legitimately replaced the plan with another valid
  // one, so assert executability rather than a specific verdict.
  EXPECT_TRUE(mote.RunEpoch(0).has_value());
}

TEST(SerdeFuzzTest, EmptyAndTinyInputsAreRejected) {
  const Schema schema = SmallSchema();
  EXPECT_FALSE(DeserializePlan({}, schema).ok());
  for (int b = 0; b < 256; ++b) {
    const std::vector<uint8_t> one = {static_cast<uint8_t>(b)};
    const Result<Plan> r = DeserializePlan(one, schema);
    if (r.ok()) {
      EXPECT_TRUE(PlanIsWellFormed(*r, schema));
    }
  }
}

}  // namespace
}  // namespace caqp
