// Deterministic byte-mutation fuzzing of the plan wire format: plans arrive
// over a lossy, corrupting radio, so DeserializePlan must reject or safely
// accept ANY mutation of a valid encoding — never crash, never install a
// malformed plan. Run under ASan in scripts/check.sh to catch OOB reads the
// Status paths might hide.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "exec/result_serde.h"
#include "net/mote.h"
#include "opt/greedyseq.h"
#include "opt/optseq.h"
#include "plan/plan_serde.h"
#include "plan/plan_verify.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

/// Applies one seeded mutation (bit flips, truncation, or extension) to a
/// copy of `bytes`.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& bytes, Rng& rng) {
  std::vector<uint8_t> out = bytes;
  switch (rng.UniformInt(0, 2)) {
    case 0: {  // flip 1-4 random bits
      const int flips = static_cast<int>(rng.UniformInt(1, 4));
      for (int i = 0; i < flips && !out.empty(); ++i) {
        const size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(out.size()) - 1));
        out[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(0, 7));
      }
      break;
    }
    case 1: {  // truncate to a random prefix
      out.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(out.size()))));
      break;
    }
    default: {  // append random garbage
      const int extra = static_cast<int>(rng.UniformInt(1, 16));
      for (int i = 0; i < extra; ++i) {
        out.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
      }
      break;
    }
  }
  return out;
}

/// A small corpus of structurally diverse valid plans.
std::vector<Plan> BuildCorpus(const Schema& schema) {
  std::vector<Plan> corpus;
  corpus.emplace_back(PlanNode::Verdict(true));
  corpus.emplace_back(PlanNode::Sequential(
      {Predicate(0, 1, 2), Predicate(2, 0, 1), Predicate(3, 2, 4, true)}));
  corpus.emplace_back(PlanNode::Split(
      0, 2,
      PlanNode::Sequential({Predicate(2, 1, 3)}),
      PlanNode::Split(1, 3, PlanNode::Verdict(false),
                      PlanNode::Sequential({Predicate(3, 0, 2)}))));
  const Query q =
      Query::Conjunction({Predicate(1, 1, 4), Predicate(2, 0, 2)});
  corpus.emplace_back(PlanNode::Generic(q, {1, 2}));
  (void)schema;
  return corpus;
}

TEST(SerdeFuzzTest, MutatedPlanBytesNeverCrashOrInstallMalformedPlans) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const std::vector<Plan> corpus = BuildCorpus(schema);

  size_t accepted = 0, rejected = 0;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    for (const Plan& plan : corpus) {
      const std::vector<uint8_t> bytes = SerializePlan(plan);
      for (int round = 0; round < 40; ++round) {
        const std::vector<uint8_t> mutated = Mutate(bytes, rng);
        Mote mote(0, schema, cm, [](size_t, AttrId) { return Value{0}; });
        const Status st = mote.ReceivePlanBytes(mutated);
        if (st.ok()) {
          ++accepted;
          // Whatever survived decoding must be a fully valid plan...
          ASSERT_TRUE(mote.has_plan());
          ASSERT_NE(mote.installed_plan(), nullptr);
          EXPECT_TRUE(PlanIsWellFormed(*mote.installed_plan(), schema));
          // ...and executable without tripping any executor invariant.
          EXPECT_TRUE(mote.RunEpoch(0).has_value());
        } else {
          ++rejected;
          EXPECT_FALSE(mote.has_plan());
        }
      }
    }
  }
  // The corpus and mutation mix must actually exercise both paths.
  EXPECT_GT(accepted, 0u);  // some bit flips still decode to valid plans
  EXPECT_GT(rejected, 500u);
}

TEST(SerdeFuzzTest, RejectedBytesKeepThePreviousPlan) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Mote mote(0, schema, cm, [](size_t, AttrId) { return Value{1}; });
  const Plan good(PlanNode::Sequential({Predicate(0, 1, 1)}));
  ASSERT_TRUE(mote.ReceivePlanBytes(SerializePlan(good)).ok());

  Rng rng(5);
  const std::vector<uint8_t> bytes = SerializePlan(good);
  size_t rejections = 0;
  for (int round = 0; round < 200; ++round) {
    const std::vector<uint8_t> mutated = Mutate(bytes, rng);
    if (!mote.ReceivePlanBytes(mutated).ok()) {
      ++rejections;
      // The pre-mutation plan stays active and keeps producing verdicts.
      ASSERT_TRUE(mote.has_plan());
      EXPECT_TRUE(PlanIsWellFormed(*mote.installed_plan(), schema));
    }
  }
  EXPECT_GT(rejections, 0u);
  // A mutation may have legitimately replaced the plan with another valid
  // one, so assert executability rather than a specific verdict.
  EXPECT_TRUE(mote.RunEpoch(0).has_value());
}

/// In-test encoder for the legacy recursive tree format (leading byte =
/// root node kind in 0..3), matching the pre-CompiledPlan SerializeNode
/// byte-for-byte. DeserializeCompiledPlan must keep accepting these.
void LegacyEncode(const PlanNode& n, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(n.kind));
  switch (n.kind) {
    case PlanNode::Kind::kSplit:
      w->PutVarint(n.attr);
      w->PutVarint(n.split_value);
      LegacyEncode(*n.lt, w);
      LegacyEncode(*n.ge, w);
      break;
    case PlanNode::Kind::kVerdict:
      w->PutU8(n.verdict ? 1 : 0);
      break;
    case PlanNode::Kind::kSequential:
      w->PutVarint(n.sequence.size());
      for (const Predicate& p : n.sequence) {
        w->PutVarint(p.attr);
        w->PutVarint(p.lo);
        w->PutVarint(p.hi);
        w->PutU8(p.negated ? 1 : 0);
      }
      break;
    case PlanNode::Kind::kGeneric: {
      w->PutVarint(n.acquire_order.size());
      for (AttrId a : n.acquire_order) w->PutVarint(a);
      const auto& conjuncts = n.residual_query.conjuncts();
      w->PutVarint(conjuncts.size());
      for (const Conjunct& c : conjuncts) {
        w->PutVarint(c.size());
        for (const Predicate& p : c) {
          w->PutVarint(p.attr);
          w->PutVarint(p.lo);
          w->PutVarint(p.hi);
          w->PutU8(p.negated ? 1 : 0);
        }
      }
      break;
    }
  }
}

TEST(SerdeFuzzTest, FlatBytesCarryVersionTag) {
  const std::vector<Plan> corpus = BuildCorpus(SmallSchema());
  for (const Plan& plan : corpus) {
    const std::vector<uint8_t> bytes = SerializePlan(plan);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes[0], kPlanWireFormatVersion);
  }
}

TEST(SerdeFuzzTest, UnknownVersionBytesAreRejected) {
  const Schema schema = SmallSchema();
  const std::vector<Plan> corpus = BuildCorpus(schema);
  for (const Plan& plan : corpus) {
    std::vector<uint8_t> bytes = SerializePlan(plan);
    // Any leading byte outside {legacy kinds 0..3, 0xCA} is a format error.
    bytes[0] = 0x77;
    EXPECT_FALSE(DeserializeCompiledPlan(bytes, schema).ok());
    bytes[0] = 0xCB;
    EXPECT_FALSE(DeserializeCompiledPlan(bytes, schema).ok());
  }
}

TEST(SerdeFuzzTest, LegacyTreeBytesStillDecode) {
  const Schema schema = SmallSchema();
  const std::vector<Plan> corpus = BuildCorpus(schema);
  for (const Plan& plan : corpus) {
    ByteWriter w;
    LegacyEncode(plan.root(), &w);
    const Result<CompiledPlan> decoded =
        DeserializeCompiledPlan(w.bytes(), schema);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(PlanIsWellFormed(*decoded, schema));
    // The legacy decode and a direct compile agree on every tuple.
    const CompiledPlan direct = CompiledPlan::Compile(plan);
    Tuple t(schema.num_attributes(), 0);
    while (true) {
      EXPECT_EQ(decoded->VerdictFor(t), direct.VerdictFor(t));
      size_t a = 0;
      for (; a < t.size(); ++a) {
        if (++t[a] < schema.domain_size(static_cast<AttrId>(a))) break;
        t[a] = 0;
      }
      if (a == t.size()) break;
    }
  }
}

TEST(SerdeFuzzTest, MutatedLegacyBytesNeverCrashOrInstallMalformedPlans) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const std::vector<Plan> corpus = BuildCorpus(schema);

  size_t rejected = 0;
  for (uint64_t seed = 100; seed <= 140; ++seed) {
    Rng rng(seed);
    for (const Plan& plan : corpus) {
      ByteWriter w;
      LegacyEncode(plan.root(), &w);
      for (int round = 0; round < 40; ++round) {
        const std::vector<uint8_t> mutated = Mutate(w.bytes(), rng);
        Mote mote(0, schema, cm, [](size_t, AttrId) { return Value{0}; });
        if (mote.ReceivePlanBytes(mutated).ok()) {
          ASSERT_NE(mote.installed_plan(), nullptr);
          EXPECT_TRUE(PlanIsWellFormed(*mote.installed_plan(), schema));
          EXPECT_TRUE(mote.RunEpoch(0).has_value());
        } else {
          ++rejected;
        }
      }
    }
  }
  EXPECT_GT(rejected, 0u);
}

// ---------------------------------------------------------------------------
// ExecutionResult wire format (exec/result_serde.h) — the reply counterpart
// of the plan bytes above: shard replies also cross a corrupting channel,
// and a merge of a corrupt partial would silently poison the whole query.
// ---------------------------------------------------------------------------

/// A corpus of structurally diverse valid results.
std::vector<ExecutionResult> ResultCorpus() {
  std::vector<ExecutionResult> corpus;
  corpus.emplace_back();  // all defaults: kFalse, zero cost

  ExecutionResult match;
  match.verdict3 = Truth::kTrue;
  match.verdict = true;
  match.cost = 133.0;
  match.acquisitions = 4;
  match.acquired.Insert(0);
  match.acquired.Insert(1);
  match.acquired.Insert(2);
  match.acquired.Insert(3);
  corpus.push_back(match);

  ExecutionResult degraded;
  degraded.verdict3 = Truth::kUnknown;
  degraded.cost = 51.5;
  degraded.acquisitions = 2;
  degraded.retries = 3;
  degraded.acquired.Insert(0);
  degraded.failed.Insert(2);
  corpus.push_back(degraded);

  ExecutionResult aborted;
  aborted.verdict3 = Truth::kUnknown;
  aborted.aborted = true;
  aborted.cost = 1.0;
  aborted.acquisitions = 1;
  aborted.acquired.Insert(1);
  aborted.failed.Insert(3);
  corpus.push_back(aborted);
  return corpus;
}

TEST(SerdeFuzzResultTest, RoundTripIsExact) {
  for (const ExecutionResult& r : ResultCorpus()) {
    const std::vector<uint8_t> bytes = SerializeExecutionResult(r);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes[0], kResultWireFormatVersion);
    const Result<ExecutionResult> back = DeserializeExecutionResult(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value().verdict, r.verdict);
    EXPECT_EQ(back.value().verdict3, r.verdict3);
    EXPECT_EQ(back.value().aborted, r.aborted);
    EXPECT_EQ(back.value().cost, r.cost);  // bit-exact: f64 on the wire
    EXPECT_EQ(back.value().acquisitions, r.acquisitions);
    EXPECT_EQ(back.value().retries, r.retries);
    EXPECT_EQ(back.value().acquired.bits, r.acquired.bits);
    EXPECT_EQ(back.value().failed.bits, r.failed.bits);
  }
}

TEST(SerdeFuzzResultTest, MutatedResultBytesNeverCrashOrBreakInvariants) {
  const std::vector<ExecutionResult> corpus = ResultCorpus();
  size_t accepted = 0, rejected = 0;
  for (uint64_t seed = 200; seed <= 260; ++seed) {
    Rng rng(seed);
    for (const ExecutionResult& r : corpus) {
      const std::vector<uint8_t> bytes = SerializeExecutionResult(r);
      for (int round = 0; round < 40; ++round) {
        const std::vector<uint8_t> mutated = Mutate(bytes, rng);
        const Result<ExecutionResult> decoded =
            DeserializeExecutionResult(mutated);
        if (!decoded.ok()) {
          ++rejected;
          continue;
        }
        ++accepted;
        // Anything that survives decoding must satisfy every structural
        // invariant a genuine shard reply would: the coordinator merges it
        // without further checks.
        const ExecutionResult& d = decoded.value();
        EXPECT_LE(static_cast<uint8_t>(d.verdict3), 2u);
        EXPECT_EQ(d.verdict, d.verdict3 == Truth::kTrue);
        EXPECT_TRUE(std::isfinite(d.cost));
        EXPECT_GE(d.cost, 0.0);
        EXPECT_GE(d.acquisitions, 0);
        EXPECT_GE(d.retries, 0);
      }
    }
  }
  EXPECT_GT(accepted, 0u);  // some bit flips still decode
  EXPECT_GT(rejected, 500u);
}

TEST(SerdeFuzzResultTest, EmptyAndTinyResultInputsAreRejected) {
  EXPECT_FALSE(DeserializeExecutionResult({}).ok());
  for (int b = 0; b < 256; ++b) {
    EXPECT_FALSE(
        DeserializeExecutionResult({static_cast<uint8_t>(b)}).ok());
  }
}

// ---------------------------------------------------------------------------
// Trace-context tail (PR 10): flags bit 1 appends trace_id / root_span_id /
// parent_span_id varints. Legacy v0xE5 bytes never set the bit and must
// keep decoding byte for byte; a corrupt tail must reject, not crash.
// ---------------------------------------------------------------------------

TEST(SerdeFuzzResultTest, TraceContextRoundTrips) {
  const ResultTraceContext contexts[] = {
      {1, 1, 0},
      {42, (7u << 22) + 1, 3},
      {~0ull >> 1, ~0u, ~0u},
  };
  for (const ExecutionResult& r : ResultCorpus()) {
    for (const ResultTraceContext& ctx : contexts) {
      const std::vector<uint8_t> bytes = SerializeExecutionResult(r, ctx);
      EXPECT_EQ(bytes[2] & 0x2, 0x2) << "flags bit 1 must be set";
      ResultTraceContext back;
      const Result<ExecutionResult> decoded =
          DeserializeExecutionResult(bytes, &back);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(back, ctx);
      EXPECT_EQ(decoded.value().verdict3, r.verdict3);
      // The overload that discards the tail accepts the same bytes.
      EXPECT_TRUE(DeserializeExecutionResult(bytes).ok());
    }
  }
}

TEST(SerdeFuzzResultTest, AbsentContextReproducesLegacyBytes) {
  for (const ExecutionResult& r : ResultCorpus()) {
    const std::vector<uint8_t> legacy = SerializeExecutionResult(r);
    const std::vector<uint8_t> explicit_absent =
        SerializeExecutionResult(r, ResultTraceContext{});
    EXPECT_EQ(legacy, explicit_absent);
    EXPECT_EQ(legacy[2] & 0x2, 0);
    ResultTraceContext trace;
    trace.trace_id = 99;  // must be overwritten to "absent"
    ASSERT_TRUE(DeserializeExecutionResult(legacy, &trace).ok());
    EXPECT_FALSE(trace.present());
  }
}

TEST(SerdeFuzzResultTest, TraceTailWithZeroTraceIdIsRejected) {
  // Corpus entry 0 has all-zero counters, so every varint ahead of the
  // tail is one byte and the tail occupies exactly the last three bytes.
  const ResultTraceContext ctx{1, 5, 7};
  std::vector<uint8_t> bytes =
      SerializeExecutionResult(ExecutionResult{}, ctx);
  ASSERT_GE(bytes.size(), 3u);
  ASSERT_EQ(bytes[bytes.size() - 3], 1u);  // trace_id varint
  bytes[bytes.size() - 3] = 0;
  EXPECT_FALSE(DeserializeExecutionResult(bytes).ok());
}

TEST(SerdeFuzzResultTest, TruncatedTraceTailsAreRejected) {
  const ResultTraceContext ctx{42, (7u << 22) + 1, 3};
  for (const ExecutionResult& r : ResultCorpus()) {
    const std::vector<uint8_t> bytes = SerializeExecutionResult(r, ctx);
    const std::vector<uint8_t> plain = SerializeExecutionResult(r);
    // Chop the tail off byte by byte: every prefix that still has the
    // flag bit set but an incomplete tail must reject.
    for (size_t len = plain.size(); len < bytes.size(); ++len) {
      std::vector<uint8_t> cut(bytes.begin(),
                               bytes.begin() + static_cast<long>(len));
      EXPECT_FALSE(DeserializeExecutionResult(cut).ok()) << "len " << len;
    }
  }
}

TEST(SerdeFuzzResultTest, MutatedTraceBytesNeverCrashOrBreakInvariants) {
  const ResultTraceContext ctx{77, (3u << 22) + 9, (1u << 22) + 2};
  size_t accepted = 0, rejected = 0;
  for (uint64_t seed = 300; seed <= 360; ++seed) {
    Rng rng(seed);
    for (const ExecutionResult& r : ResultCorpus()) {
      const std::vector<uint8_t> bytes = SerializeExecutionResult(r, ctx);
      for (int round = 0; round < 40; ++round) {
        const std::vector<uint8_t> mutated = Mutate(bytes, rng);
        ResultTraceContext trace;
        const Result<ExecutionResult> decoded =
            DeserializeExecutionResult(mutated, &trace);
        if (!decoded.ok()) {
          ++rejected;
          continue;
        }
        ++accepted;
        const ExecutionResult& d = decoded.value();
        EXPECT_LE(static_cast<uint8_t>(d.verdict3), 2u);
        EXPECT_EQ(d.verdict, d.verdict3 == Truth::kTrue);
        EXPECT_TRUE(std::isfinite(d.cost));
        EXPECT_GE(d.cost, 0.0);
        // A surviving trace context is either absent or well-formed; the
        // decoder never hands back a present() context with trace_id 0.
        if (trace.present()) {
          EXPECT_NE(trace.trace_id, 0u);
        }
      }
    }
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 500u);
}

TEST(SerdeFuzzTest, EmptyAndTinyInputsAreRejected) {
  const Schema schema = SmallSchema();
  EXPECT_FALSE(DeserializePlan({}, schema).ok());
  for (int b = 0; b < 256; ++b) {
    const std::vector<uint8_t> one = {static_cast<uint8_t>(b)};
    const Result<Plan> r = DeserializePlan(one, schema);
    if (r.ok()) {
      EXPECT_TRUE(PlanIsWellFormed(*r, schema));
    }
  }
}

}  // namespace
}  // namespace caqp
