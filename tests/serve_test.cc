// caqp::serve tests: query canonicalization/signatures, the sharded LRU plan
// cache, single-flight planning, the worker pool, and the QueryService end
// to end — including the concurrency stress tests that scripts/check.sh
// runs under ThreadSanitizer (every suite here is named Serve* so the TSan
// build can select them with ctest -R '^Serve').

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/query_signature.h"
#include "obs/registry.h"
#include "opt/adaptive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "prob/chow_liu.h"
#include "prob/dataset_estimator.h"
#include "serve/plan_cache.h"
#include "serve/query_service.h"
#include "serve/single_flight.h"
#include "serve/thread_pool.h"
#include "test_util.h"

namespace caqp {
namespace {

using serve::PlanCacheKey;
using serve::QueryService;
using serve::ServeReport;
using serve::ShardedPlanCache;
using serve::SingleFlight;
using serve::ThreadPool;

// ---------------------------------------------------------------------------
// Canonicalization and signatures
// ---------------------------------------------------------------------------

TEST(ServeSignatureTest, PredicateOrderDoesNotMatter) {
  const Query a = Query::Conjunction(
      {Predicate(0, 1, 2), Predicate(1, 0, 3), Predicate(2, 1, 1)});
  const Query b = Query::Conjunction(
      {Predicate(2, 1, 1), Predicate(0, 1, 2), Predicate(1, 0, 3)});
  EXPECT_FALSE(a == b);  // structural equality is order-sensitive
  EXPECT_EQ(QuerySignature(a), QuerySignature(b));
  EXPECT_TRUE(EquivalentQueries(a, b));
  EXPECT_TRUE(CanonicalizeQuery(a) == CanonicalizeQuery(b));
}

TEST(ServeSignatureTest, ConjunctOrderDoesNotMatter) {
  const Query a = Query::Disjunction(
      {{Predicate(0, 0, 1)}, {Predicate(1, 2, 3), Predicate(2, 0, 0)}});
  const Query b = Query::Disjunction(
      {{Predicate(2, 0, 0), Predicate(1, 2, 3)}, {Predicate(0, 0, 1)}});
  EXPECT_EQ(QuerySignature(a), QuerySignature(b));
  EXPECT_TRUE(EquivalentQueries(a, b));
}

TEST(ServeSignatureTest, DuplicatePredicatesCollapse) {
  // AND and OR are idempotent; exact duplicates must not change the key.
  const Query a = Query::Conjunction({Predicate(0, 1, 2), Predicate(0, 1, 2),
                                      Predicate(1, 0, 0)});
  const Query b = Query::Conjunction({Predicate(1, 0, 0), Predicate(0, 1, 2)});
  EXPECT_EQ(QuerySignature(a), QuerySignature(b));

  const Query c = Query::Disjunction({{Predicate(0, 1, 2)},
                                      {Predicate(0, 1, 2)},
                                      {Predicate(1, 0, 0)}});
  const Query d =
      Query::Disjunction({{Predicate(1, 0, 0)}, {Predicate(0, 1, 2)}});
  EXPECT_EQ(QuerySignature(c), QuerySignature(d));
}

TEST(ServeSignatureTest, NegationIsPartOfTheKey) {
  const Query plain = Query::Conjunction({Predicate(0, 1, 2)});
  const Query negated =
      Query::Conjunction({Predicate(0, 1, 2, /*negated=*/true)});
  EXPECT_NE(QuerySignature(plain), QuerySignature(negated));
  EXPECT_FALSE(EquivalentQueries(plain, negated));
}

TEST(ServeSignatureTest, BoundsArePartOfTheKey) {
  const Query a = Query::Conjunction({Predicate(0, 1, 2)});
  const Query b = Query::Conjunction({Predicate(0, 1, 3)});
  const Query c = Query::Conjunction({Predicate(0, 0, 2)});
  EXPECT_NE(QuerySignature(a), QuerySignature(b));
  EXPECT_NE(QuerySignature(a), QuerySignature(c));
}

TEST(ServeSignatureTest, DuplicateAttributesWithDistinctRangesPreserved) {
  // Query::ValidFor rejects two predicates on one attribute; canonicalization
  // must not silently merge them and mask the invalid input.
  const Query q =
      Query::Conjunction({Predicate(0, 0, 1), Predicate(0, 2, 3)});
  EXPECT_EQ(CanonicalizeQuery(q).TotalPredicates(), 2u);
}

TEST(ServeSignatureTest, CanonicalizeIsIdempotent) {
  const Query q = Query::Disjunction(
      {{Predicate(3, 1, 4, true), Predicate(0, 0, 2)},
       {Predicate(2, 2, 2)},
       {Predicate(3, 1, 4, true), Predicate(0, 0, 2)}});
  const Query once = CanonicalizeQuery(q);
  const Query twice = CanonicalizeQuery(once);
  EXPECT_TRUE(once == twice);
  EXPECT_EQ(QuerySignature(q), QuerySignature(once));
}

// ---------------------------------------------------------------------------
// Sharded plan cache
// ---------------------------------------------------------------------------

std::shared_ptr<const CompiledPlan> LeafPlan(bool verdict) {
  return std::make_shared<const CompiledPlan>(
      CompiledPlan::Compile(*PlanNode::Verdict(verdict)));
}

TEST(ServePlanCacheTest, HitAndMiss) {
  ShardedPlanCache cache({/*capacity=*/8, /*shards=*/2});
  const PlanCacheKey key{1, 0, 0};
  EXPECT_EQ(cache.Get(key), nullptr);
  auto plan = LeafPlan(true);
  cache.Put(key, plan);
  EXPECT_EQ(cache.Get(key), plan);
  EXPECT_EQ(cache.Get(PlanCacheKey{1, 1, 0}), nullptr);  // version differs
  EXPECT_EQ(cache.Get(PlanCacheKey{1, 0, 1}), nullptr);  // config differs
  const ShardedPlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.inserts, 1u);
}

TEST(ServePlanCacheTest, EvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is global and deterministic.
  ShardedPlanCache cache({/*capacity=*/2, /*shards=*/1});
  cache.Put({1, 0, 0}, LeafPlan(true));
  cache.Put({2, 0, 0}, LeafPlan(true));
  EXPECT_NE(cache.Get({1, 0, 0}), nullptr);  // 1 is now most recent
  cache.Put({3, 0, 0}, LeafPlan(true));      // evicts 2
  EXPECT_EQ(cache.Get({2, 0, 0}), nullptr);
  EXPECT_NE(cache.Get({1, 0, 0}), nullptr);
  EXPECT_NE(cache.Get({3, 0, 0}), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServePlanCacheTest, ZeroCapacityDisablesCaching) {
  ShardedPlanCache cache({/*capacity=*/0, /*shards=*/4});
  cache.Put({1, 0, 0}, LeafPlan(true));
  EXPECT_EQ(cache.Get({1, 0, 0}), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(ServePlanCacheTest, PutReplacesExistingEntry) {
  ShardedPlanCache cache({8, 2});
  cache.Put({1, 0, 0}, LeafPlan(true));
  auto replacement = LeafPlan(false);
  cache.Put({1, 0, 0}, replacement);
  EXPECT_EQ(cache.Get({1, 0, 0}), replacement);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServePlanCacheTest, InvalidateAllDropsEverything) {
  // Capacity well above the entry count so shard skew cannot evict before
  // the invalidation we are testing.
  ShardedPlanCache cache({64, 4});
  for (uint64_t i = 0; i < 10; ++i) cache.Put({i, 0, 0}, LeafPlan(true));
  EXPECT_EQ(cache.size(), 10u);
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 10u);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(cache.Get({i, 0, 0}), nullptr);
}

TEST(ServePlanCacheTest, HoldsEntryAliveAcrossEviction) {
  ShardedPlanCache cache({1, 1});
  auto plan = cache.Get({1, 0, 0});
  cache.Put({1, 0, 0}, LeafPlan(true));
  plan = cache.Get({1, 0, 0});
  cache.Put({2, 0, 0}, LeafPlan(false));  // evicts key 1
  ASSERT_NE(plan, nullptr);               // still safe to use
  EXPECT_TRUE(plan->root().verdict());
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

TEST(ServeThreadPoolTest, RunsEveryTaskWithValidWorkerId) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<size_t> ran{0};
  std::atomic<bool> bad_id{false};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&](size_t worker_id) {
      if (worker_id >= 3) bad_id = true;
      ran.fetch_add(1);
    });
  }
  // The destructor drains the queue before joining.
  {
    ThreadPool drained(2);
    for (int i = 0; i < 50; ++i) {
      drained.Submit([&](size_t) { ran.fetch_add(1); });
    }
  }
  while (ran.load() < 150) std::this_thread::yield();
  EXPECT_EQ(ran.load(), 150u);
  EXPECT_FALSE(bad_id.load());
}

// ---------------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------------

TEST(ServeSingleFlightTest, ConcurrentSameKeyBuildsOnce) {
  SingleFlight flight;
  const PlanCacheKey key{42, 0, 0};
  std::atomic<int> builds{0};
  std::atomic<int> leaders{0};
  constexpr int kThreads = 8;

  // Gate the build on all threads having arrived, so every thread is inside
  // Do() while the leader is still building.
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<int> arrived{0};

  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const CompiledPlan>> results(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      arrived.fetch_add(1);
      SingleFlight::Result r = flight.Do(key, [&] {
        open.wait();
        builds.fetch_add(1);
        return LeafPlan(true);
      });
      leaders.fetch_add(r.leader);
      results[i] = r.plan;
    });
  }
  while (arrived.load() < kThreads) std::this_thread::yield();
  // Give followers a moment to reach the future wait, then open the gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.set_value();
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(leaders.load(), 1);
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(results[i], results[0]);
  EXPECT_EQ(flight.InFlight(), 0u);
}

TEST(ServeSingleFlightTest, DistinctKeysBuildIndependently) {
  SingleFlight flight;
  std::atomic<int> builds{0};
  std::vector<std::thread> threads;
  for (uint64_t k = 0; k < 4; ++k) {
    threads.emplace_back([&, k] {
      flight.Do(PlanCacheKey{k, 0, 0}, [&] {
        builds.fetch_add(1);
        return LeafPlan(true);
      });
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(builds.load(), 4);
}

// ---------------------------------------------------------------------------
// QueryService end to end
// ---------------------------------------------------------------------------

/// Counts builds across all bundles so tests can assert how often the
/// service actually planned.
class CountingBuilder : public serve::PlanBuilder {
 public:
  CountingBuilder(CondProbEstimator& estimator,
                  const AcquisitionCostModel& cm, const SplitPointSet& splits,
                  const SequentialSolver& solver, std::atomic<size_t>& builds)
      : builds_(builds) {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &solver;
    opts.max_splits = 3;
    planner_ = std::make_unique<GreedyPlanner>(estimator, cm, opts);
  }
  Plan Build(const Query& query) override {
    builds_.fetch_add(1);
    return planner_->BuildPlan(query);
  }
  uint64_t ConfigFingerprint() const override { return 7; }

 private:
  std::atomic<size_t>& builds_;
  std::unique_ptr<GreedyPlanner> planner_;
};

struct ServiceFixture {
  Schema schema = testing_util::SmallSchema();
  Dataset data = testing_util::CorrelatedDataset(schema, 4000, 11);
  PerAttributeCostModel cm{schema};
  SplitPointSet splits = SplitPointSet::AllPoints(schema);
  GreedySeqSolver solver;
  // ChowLiu is immutable after construction, so one instance may back every
  // worker's bundle (see prob/estimator.h).
  ChowLiuEstimator estimator{data};
  std::atomic<size_t> builds{0};

  QueryService MakeService(size_t workers = 4, size_t capacity = 64) {
    QueryService::Options opts;
    opts.num_workers = workers;
    opts.cache_capacity = capacity;
    return QueryService(
        schema, cm,
        [this] {
          return std::make_unique<CountingBuilder>(estimator, cm, splits,
                                                   solver, builds);
        },
        opts);
  }

  Query MidQuery() const {
    return Query::Conjunction(
        {Predicate(2, 1, 3), Predicate(3, 2, 4), Predicate(0, 1, 2)});
  }
};

TEST(ServeQueryServiceTest, VerdictsMatchDirectEvaluation) {
  ServiceFixture fx;
  QueryService service = fx.MakeService();
  const Query q = fx.MidQuery();
  for (RowId r = 0; r < 200; ++r) {
    const Tuple t = fx.data.GetTuple(r);
    const QueryService::Response resp = service.SubmitAndWait(q, t);
    EXPECT_EQ(resp.exec.verdict, q.Matches(t)) << "row " << r;
    EXPECT_NE(resp.plan, nullptr);
  }
  EXPECT_EQ(fx.builds.load(), 1u);  // one build, 199 cache hits
}

TEST(ServeQueryServiceTest, ShuffledPredicatesHitTheSameEntry) {
  ServiceFixture fx;
  QueryService service = fx.MakeService();
  const Tuple t = fx.data.GetTuple(0);
  const QueryService::Response first = service.SubmitAndWait(
      Query::Conjunction({Predicate(0, 1, 2), Predicate(3, 2, 4)}), t);
  const QueryService::Response second = service.SubmitAndWait(
      Query::Conjunction({Predicate(3, 2, 4), Predicate(0, 1, 2)}), t);
  EXPECT_EQ(first.query_sig, second.query_sig);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.plan, first.plan);
  EXPECT_EQ(fx.builds.load(), 1u);
}

TEST(ServeQueryServiceTest, CachedRequestPathClonesNoPlanNodes) {
  ServiceFixture fx;
  QueryService service = fx.MakeService();
  const Query q = fx.MidQuery();
  // Warm the cache: the single-flight leader plans once and compiles the
  // tree into the shared CompiledPlan at insert time.
  service.SubmitAndWait(q, fx.data.GetTuple(0));

  // Every subsequent request runs the flat IR straight out of the cache:
  // zero PlanNode clones (and zero tree copies of any kind) on the hot path.
  const uint64_t clones_before =
      obs::DefaultRegistry().GetCounter("plan.node_clones").value();
  for (RowId r = 1; r < 100; ++r) {
    const QueryService::Response resp =
        service.SubmitAndWait(q, fx.data.GetTuple(r));
    ASSERT_TRUE(resp.cache_hit);
  }
  const uint64_t clones_after =
      obs::DefaultRegistry().GetCounter("plan.node_clones").value();
  EXPECT_EQ(clones_after - clones_before, 0u);
  EXPECT_EQ(fx.builds.load(), 1u);
}

TEST(ServeQueryServiceTest, ZeroCapacityPlansEveryRequest) {
  ServiceFixture fx;
  QueryService service = fx.MakeService(/*workers=*/2, /*capacity=*/0);
  const Query q = fx.MidQuery();
  for (RowId r = 0; r < 5; ++r) {
    const QueryService::Response resp =
        service.SubmitAndWait(q, fx.data.GetTuple(r));
    EXPECT_TRUE(resp.planned);
    EXPECT_FALSE(resp.cache_hit);
  }
  EXPECT_EQ(fx.builds.load(), 5u);
}

TEST(ServeQueryServiceTest, InvalidateCacheBumpsVersionAndReplans) {
  ServiceFixture fx;
  QueryService service = fx.MakeService();
  const Query q = fx.MidQuery();
  const Tuple t = fx.data.GetTuple(0);
  const QueryService::Response before = service.SubmitAndWait(q, t);
  EXPECT_EQ(before.estimator_version, 0u);
  service.InvalidateCache();
  EXPECT_EQ(service.estimator_version(), 1u);
  EXPECT_EQ(service.cache().size(), 0u);
  const QueryService::Response after = service.SubmitAndWait(q, t);
  EXPECT_EQ(after.estimator_version, 1u);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_TRUE(after.planned);
  EXPECT_EQ(fx.builds.load(), 2u);
}

TEST(ServeQueryServiceTest, ReportCoversEveryRequest) {
  ServiceFixture fx;
  QueryService service = fx.MakeService();
  const Query q = fx.MidQuery();
  for (RowId r = 0; r < 32; ++r) {
    service.SubmitAndWait(q, fx.data.GetTuple(r));
  }
  const ServeReport report = service.Report();
  EXPECT_EQ(report.requests, 32u);
  EXPECT_EQ(report.ok, 32u);
  EXPECT_EQ(report.latency.count, 32u);
  EXPECT_GT(report.latency.mean(), 0.0);
  EXPECT_LE(report.latency.p50(), report.latency.p99());
  EXPECT_LE(report.latency.p99(), report.latency.max);
  // 1 leader planned, the rest were cache hits.
  EXPECT_EQ(report.planned, 1u);
  EXPECT_EQ(report.cache_hits, 31u);
  EXPECT_EQ(report.deadline_exceeded, 0u);
  EXPECT_EQ(report.shed, 0u);
}

TEST(ServeQueryServiceTest, AdaptiveAdoptionInvalidatesTheCache) {
  // Reuse the adaptive test's drifting stream: when AdaptivePlanner adopts a
  // replacement plan, the hook must orphan every cached plan in the service.
  Schema schema;
  schema.AddAttribute("cheap", 2, 1.0);
  schema.AddAttribute("expA", 2, 50.0);
  schema.AddAttribute("expB", 2, 50.0);
  PerAttributeCostModel cm(schema);
  SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  const Query query =
      Query::Conjunction({Predicate(1, 1, 1), Predicate(2, 1, 1)});

  Dataset warm = testing_util::CorrelatedDataset(schema, 1000, 5);
  ChowLiuEstimator estimator(warm);
  GreedySeqSolver greedyseq;
  std::atomic<size_t> builds{0};
  QueryService service(
      schema, cm,
      [&] {
        return std::make_unique<CountingBuilder>(estimator, cm, splits,
                                                 greedyseq, builds);
      },
      QueryService::Options{});

  AdaptivePlanner::Options aopts;
  aopts.window_size = 600;
  aopts.replan_interval = 200;
  aopts.improvement_threshold = 0.02;
  aopts.split_points = &splits;
  aopts.seq_solver = &optseq;
  aopts.max_splits = 4;
  aopts.on_plan_adopted = service.InvalidationHook();
  AdaptivePlanner adaptive(schema, query, cm, aopts);

  // Populate the cache, then drive the stream until a replan is adopted.
  service.SubmitAndWait(query, warm.GetTuple(0));
  EXPECT_EQ(service.cache().size(), 1u);

  Rng rng(77);
  size_t fed = 0;
  // Regime 0 then flipped regime 1 — drawn from adaptive_test's generator.
  auto draw = [&](int regime) {
    const bool c = rng.Bernoulli(0.5);
    const bool a = rng.Bernoulli((regime == 0) == c ? 0.9 : 0.1);
    const bool b = rng.Bernoulli((regime == 0) == c ? 0.1 : 0.9);
    return Tuple{static_cast<Value>(c), static_cast<Value>(a),
                 static_cast<Value>(b)};
  };
  for (; fed < 1000 && adaptive.stats().replans_adopted == 0; ++fed) {
    adaptive.Observe(draw(0));
  }
  for (; fed < 5000 && adaptive.stats().replans_adopted == 0; ++fed) {
    adaptive.Observe(draw(1));
  }
  ASSERT_GT(adaptive.stats().replans_adopted, 0u)
      << "stream never drifted enough to adopt a replan";
  EXPECT_GT(service.estimator_version(), 0u);
  EXPECT_EQ(service.cache().size(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency stress (the TSan targets)
// ---------------------------------------------------------------------------

TEST(ServeStressTest, ConcurrentMixedWorkload) {
  // Many clients, a small cache (constant churn), repeated invalidations —
  // every cross-thread interaction in the subsystem exercised at once.
  ServiceFixture fx;
  QueryService service = fx.MakeService(/*workers=*/4, /*capacity=*/4);

  std::vector<Query> workload;
  for (Value lo = 0; lo < 3; ++lo) {
    workload.push_back(Query::Conjunction(
        {Predicate(2, lo, 3), Predicate(3, lo, 4), Predicate(0, 1, 2)}));
    workload.push_back(
        Query::Conjunction({Predicate(3, lo, 4, /*negated=*/true),
                            Predicate(1, lo, static_cast<Value>(lo + 2))}));
  }

  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 60;
  std::atomic<size_t> errors{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + c);
      for (size_t r = 0; r < kPerClient; ++r) {
        const Query& q = workload[static_cast<size_t>(
            rng.UniformInt(0, workload.size() - 1))];
        const Tuple t = fx.data.GetTuple(static_cast<RowId>(
            rng.UniformInt(0, fx.data.num_rows() - 1)));
        const QueryService::Response resp = service.SubmitAndWait(q, t);
        if (resp.exec.verdict != q.Matches(t)) errors.fetch_add(1);
        if (resp.plan == nullptr) errors.fetch_add(1);
        if (r % 16 == 0 && c == 0) service.InvalidateCache();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(service.Report().latency.count, kClients * kPerClient);
  const ShardedPlanCache::Stats cs = service.cache().stats();
  EXPECT_EQ(cs.hits + cs.misses, kClients * kPerClient);
}

TEST(ServeStressTest, SharedConstPlannerConcurrentBuilds) {
  // The satellite thread-safety contract (opt/planner.h): one const Planner
  // over a thread-safe estimator may run BuildPlan from many threads. Drive
  // it through SharedPlannerBuilder with caching disabled so every request
  // plans concurrently.
  ServiceFixture fx;
  GreedyPlanner::Options opts;
  opts.split_points = &fx.splits;
  opts.seq_solver = &fx.solver;
  opts.max_splits = 3;
  const GreedyPlanner shared_planner(fx.estimator, fx.cm, opts);

  QueryService::Options sopts;
  sopts.num_workers = 4;
  sopts.cache_capacity = 0;
  QueryService service(
      fx.schema, fx.cm,
      [&] {
        return std::make_unique<serve::SharedPlannerBuilder>(shared_planner,
                                                             /*fingerprint=*/1);
      },
      sopts);

  std::vector<std::future<QueryService::Response>> futures;
  for (RowId r = 0; r < 64; ++r) {
    // Vary the query so concurrent builds traverse different subproblems.
    const Value lo = static_cast<Value>(r % 3);
    futures.push_back(service.Submit(
        Query::Conjunction({Predicate(2, lo, 3), Predicate(3, lo, 4)}),
        fx.data.GetTuple(r)));
  }
  for (auto& f : futures) {
    const QueryService::Response resp = f.get();
    EXPECT_TRUE(resp.planned);
    EXPECT_NE(resp.plan, nullptr);
  }
}

TEST(ServeStressTest, SingleFlightUnderContention) {
  // A hot key rotated every round: leaders and followers interleave with
  // erase/reinsert of flights.
  SingleFlight flight;
  std::atomic<size_t> builds{0};
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 50;
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (uint64_t round = 0; round < kRounds; ++round) {
        SingleFlight::Result r = flight.Do(PlanCacheKey{round, 0, 0}, [&] {
          builds.fetch_add(1);
          std::this_thread::yield();
          return LeafPlan(true);
        });
        ASSERT_NE(r.plan, nullptr);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // At least one build per round; at most one per (round, thread) — the
  // interesting assertion is that every caller got a plan with no race,
  // which TSan checks for us.
  EXPECT_GE(builds.load(), kRounds);
  EXPECT_LE(builds.load(), kRounds * kThreads);
  EXPECT_EQ(flight.InFlight(), 0u);
}

// ---------------------------------------------------------------------------
// Robustness: deadlines, load shedding, planner-timeout fallback
// ---------------------------------------------------------------------------

/// Builder whose Build sleeps (a stand-in for an expensive planner) while
/// BuildFallback returns a cheap-but-correct generic plan immediately.
class SlowBuilder : public serve::PlanBuilder {
 public:
  SlowBuilder(double build_sleep_seconds, std::atomic<size_t>& builds,
              std::atomic<size_t>& fallbacks)
      : sleep_(build_sleep_seconds), builds_(builds), fallbacks_(fallbacks) {}

  Plan Build(const Query& query) override {
    builds_.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_));
    return GenericPlanFor(query);
  }
  Plan BuildFallback(const Query& query) override {
    fallbacks_.fetch_add(1);
    return GenericPlanFor(query);
  }
  uint64_t ConfigFingerprint() const override { return 99; }

 private:
  static Plan GenericPlanFor(const Query& query) {
    return Plan(PlanNode::Generic(query, query.ReferencedAttributes()));
  }

  double sleep_;
  std::atomic<size_t>& builds_;
  std::atomic<size_t>& fallbacks_;
};

struct SlowServiceFixture {
  Schema schema = testing_util::SmallSchema();
  PerAttributeCostModel cm{schema};
  std::atomic<size_t> builds{0};
  std::atomic<size_t> fallbacks{0};

  QueryService MakeService(QueryService::Options opts,
                           double build_sleep_seconds) {
    return QueryService(
        schema, cm,
        [this, build_sleep_seconds] {
          return std::make_unique<SlowBuilder>(build_sleep_seconds, builds,
                                               fallbacks);
        },
        opts);
  }
};

TEST(ServeRobustnessTest, DeadlinePassedBeforePickupIsRejected) {
  SlowServiceFixture fx;
  QueryService::Options opts;
  opts.num_workers = 1;
  QueryService svc = fx.MakeService(opts, /*build_sleep_seconds=*/0.3);
  const Tuple t = {1, 1, 1, 1};

  // Occupy the single worker with a slow uncached plan...
  std::future<QueryService::Response> blocker =
      svc.Submit(Query::Conjunction({Predicate(0, 1, 2)}), t);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // ...so this request's 20ms deadline expires while it sits in the queue.
  QueryService::Response late = svc.SubmitAndWait(
      Query::Conjunction({Predicate(1, 1, 2)}), t, /*deadline_seconds=*/0.02);
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.plan, nullptr);

  const QueryService::Response first = blocker.get();
  EXPECT_TRUE(first.ok());
  EXPECT_TRUE(first.exec.verdict);
}

TEST(ServeRobustnessTest, LoadSheddingAnswersUnavailableImmediately) {
  SlowServiceFixture fx;
  QueryService::Options opts;
  opts.num_workers = 1;
  opts.max_queue_depth = 1;
  QueryService svc = fx.MakeService(opts, /*build_sleep_seconds=*/0.15);
  const Tuple t = {1, 1, 1, 1};

  std::vector<std::future<QueryService::Response>> futures;
  for (int i = 0; i < 6; ++i) {
    // Distinct attrs => distinct cache keys => every request must plan.
    futures.push_back(
        svc.Submit(Query::Conjunction({Predicate(i % 4, 1, 2)}), t));
  }
  size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const QueryService::Response r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kUnavailable);
      EXPECT_EQ(r.plan, nullptr);
      ++shed;
    }
  }
  EXPECT_GE(ok, 1u);   // the admitted request(s) complete normally
  EXPECT_GE(shed, 1u); // the burst exceeded the queue depth
}

TEST(ServeRobustnessTest, PlannerTimeoutFollowerServesFallback) {
  SlowServiceFixture fx;
  QueryService::Options opts;
  opts.num_workers = 2;
  opts.planner_timeout_seconds = 0.02;
  QueryService svc = fx.MakeService(opts, /*build_sleep_seconds=*/0.4);
  const Query q = Query::Conjunction({Predicate(0, 1, 2)});
  const Tuple t = {1, 0, 0, 0};

  std::future<QueryService::Response> a = svc.Submit(q, t);
  std::future<QueryService::Response> b = svc.Submit(q, t);
  const QueryService::Response ra = a.get();
  const QueryService::Response rb = b.get();

  // Both answered, both correct, despite the leader planning for 400ms.
  EXPECT_TRUE(ra.ok());
  EXPECT_TRUE(rb.ok());
  EXPECT_TRUE(ra.exec.verdict);
  EXPECT_TRUE(rb.exec.verdict);
  // Exactly one leader planned; the other either degraded to the fallback
  // (timed out on the leader) or, if scheduling delayed it past the
  // leader's finish, hit the cache.
  EXPECT_EQ(static_cast<int>(ra.planned) + static_cast<int>(rb.planned), 1);
  const QueryService::Response& follower = ra.planned ? rb : ra;
  EXPECT_TRUE(follower.fallback || follower.cache_hit);
  if (follower.fallback) {
    EXPECT_GE(fx.fallbacks.load(), 1u);
  }

  // The fallback is never cached: the next request gets the leader's plan.
  const QueryService::Response after = svc.SubmitAndWait(q, t);
  EXPECT_TRUE(after.cache_hit);
  EXPECT_EQ(fx.builds.load(), 1u);
}

// ---------------------------------------------------------------------------
// Observability v2: request spans, flight recorder, ServeReport
// ---------------------------------------------------------------------------

#if CAQP_OBS_ENABLED

TEST(ServeObsTest, TracingRecordsNestedRequestSpans) {
  ServiceFixture fx;
  QueryService::Options opts;
  opts.num_workers = 2;
  opts.cache_capacity = 64;
  opts.enable_tracing = true;
  QueryService service(
      fx.schema, fx.cm,
      [&fx] {
        return std::make_unique<CountingBuilder>(fx.estimator, fx.cm,
                                                 fx.splits, fx.solver,
                                                 fx.builds);
      },
      opts);
  const Query q = fx.MidQuery();
  std::vector<uint64_t> trace_ids;
  for (RowId r = 0; r < 3; ++r) {
    const QueryService::Response resp =
        service.SubmitAndWait(q, fx.data.GetTuple(r));
    ASSERT_TRUE(resp.ok());
    EXPECT_NE(resp.trace_id, 0u);
    trace_ids.push_back(resp.trace_id);
  }

  const std::vector<obs::SpanEvent> events = service.trace_recorder().Events();
  for (const uint64_t trace_id : trace_ids) {
    // Each request yields a root "request" span with queue, plan, and exec
    // children nested inside it — the queueing -> planning -> execution
    // story of one request, reconstructable from parent ids alone.
    const obs::SpanEvent* request = nullptr;
    for (const obs::SpanEvent& ev : events) {
      if (ev.trace_id == trace_id && std::string_view(ev.name) == "request") {
        ASSERT_EQ(request, nullptr) << "duplicate root span";
        request = &ev;
      }
    }
    ASSERT_NE(request, nullptr);
    EXPECT_EQ(request->parent_id, 0u);

    bool saw_queue = false, saw_plan = false, saw_exec = false;
    for (const obs::SpanEvent& ev : events) {
      if (ev.trace_id != trace_id || &ev == request) continue;
      // Children start within the root and end no later than it.
      EXPECT_GE(ev.start_ns, request->start_ns);
      EXPECT_LE(ev.start_ns + ev.dur_ns, request->start_ns + request->dur_ns);
      EXPECT_EQ(ev.worker, request->worker);
      const std::string_view name(ev.name);
      if (name == "queue") {
        saw_queue = true;
        EXPECT_EQ(ev.parent_id, request->span_id);
      } else if (name == "plan") {
        saw_plan = true;
        EXPECT_EQ(ev.parent_id, request->span_id);
      } else if (name == "exec") {
        saw_exec = true;
        EXPECT_EQ(ev.parent_id, request->span_id);
      }
    }
    EXPECT_TRUE(saw_queue);
    EXPECT_TRUE(saw_plan);
    EXPECT_TRUE(saw_exec);
  }

  // The single planning leader additionally recorded the planner span chain.
  size_t build_leader_spans = 0, planner_spans = 0;
  for (const obs::SpanEvent& ev : events) {
    if (std::string_view(ev.name) == "plan.build_leader") ++build_leader_spans;
    if (std::string_view(ev.name) == "planner.build") ++planner_spans;
  }
  EXPECT_EQ(build_leader_spans, 1u);
  EXPECT_EQ(planner_spans, 1u);
  EXPECT_EQ(service.trace_recorder().incident_count(), 0u);
}

TEST(ServeObsTest, TracingOffRecordsNothing) {
  ServiceFixture fx;
  QueryService service = fx.MakeService();  // enable_tracing defaults off
  service.SubmitAndWait(fx.MidQuery(), fx.data.GetTuple(0));
  EXPECT_TRUE(service.trace_recorder().Events().empty());
  EXPECT_EQ(service.trace_recorder().incident_count(), 0u);
}

TEST(ServeObsTest, DeadlineExceededDumpsFlightRecorder) {
  SlowServiceFixture fx;
  QueryService::Options opts;
  opts.num_workers = 1;
  opts.enable_tracing = true;
  QueryService svc = fx.MakeService(opts, /*build_sleep_seconds=*/0.3);
  const Tuple t = {1, 1, 1, 1};

  std::future<QueryService::Response> blocker =
      svc.Submit(Query::Conjunction({Predicate(0, 1, 2)}), t);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  QueryService::Response late = svc.SubmitAndWait(
      Query::Conjunction({Predicate(1, 1, 2)}), t, /*deadline_seconds=*/0.02);
  blocker.get();
  ASSERT_EQ(late.status.code(), StatusCode::kDeadlineExceeded);

  EXPECT_GE(svc.Report().deadline_exceeded, 1u);
  const std::vector<obs::TraceRecorder::Incident> incidents =
      svc.trace_recorder().Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].trace_id, late.trace_id);
  EXPECT_EQ(incidents[0].reason, "deadline_exceeded");
  // The ring was dumped after the request span closed, so the degraded
  // request's own spans are part of its postmortem.
  bool has_own_root = false;
  for (const obs::SpanEvent& ev : incidents[0].events) {
    if (ev.trace_id == late.trace_id &&
        std::string_view(ev.name) == "request") {
      has_own_root = true;
    }
  }
  EXPECT_TRUE(has_own_root);
}

TEST(ServeObsTest, LoadShedRecordsIncident) {
  SlowServiceFixture fx;
  QueryService::Options opts;
  opts.num_workers = 1;
  opts.max_queue_depth = 1;
  opts.enable_tracing = true;
  QueryService svc = fx.MakeService(opts, /*build_sleep_seconds=*/0.15);
  const Tuple t = {1, 1, 1, 1};

  std::vector<std::future<QueryService::Response>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        svc.Submit(Query::Conjunction({Predicate(i % 4, 1, 2)}), t));
  }
  std::vector<uint64_t> shed_ids;
  for (auto& f : futures) {
    const QueryService::Response r = f.get();
    if (!r.ok()) shed_ids.push_back(r.trace_id);
  }
  ASSERT_GE(shed_ids.size(), 1u);
  EXPECT_EQ(svc.Report().shed, shed_ids.size());

  const std::vector<obs::TraceRecorder::Incident> incidents =
      svc.trace_recorder().Incidents();
  for (const uint64_t id : shed_ids) {
    bool found = false;
    for (const auto& incident : incidents) {
      if (incident.trace_id == id && incident.reason == "load_shed") {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "no load_shed incident for trace " << id;
  }
}

TEST(ServeObsTest, PlannerTimeoutFallbackDumpsFlightRecorder) {
  SlowServiceFixture fx;
  QueryService::Options opts;
  opts.num_workers = 2;
  opts.planner_timeout_seconds = 0.02;
  opts.enable_tracing = true;
  QueryService svc = fx.MakeService(opts, /*build_sleep_seconds=*/0.4);
  const Query q = Query::Conjunction({Predicate(0, 1, 2)});
  const Tuple t = {1, 0, 0, 0};

  std::future<QueryService::Response> a = svc.Submit(q, t);
  std::future<QueryService::Response> b = svc.Submit(q, t);
  const QueryService::Response ra = a.get();
  const QueryService::Response rb = b.get();
  const QueryService::Response& follower = ra.planned ? rb : ra;
  if (!follower.fallback) {
    GTEST_SKIP() << "scheduling let the follower hit the cache";
  }
  EXPECT_EQ(svc.Report().fallbacks, 1u);
  const std::vector<obs::TraceRecorder::Incident> incidents =
      svc.trace_recorder().Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].trace_id, follower.trace_id);
  EXPECT_EQ(incidents[0].reason, "planner_timeout_fallback");
  EXPECT_FALSE(incidents[0].events.empty());
}

#endif  // CAQP_OBS_ENABLED

}  // namespace
}  // namespace caqp
