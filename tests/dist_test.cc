// caqp::dist tests: result-merge semantics, row partitioning, the shard
// health machine, ExecutionResult wire round-trips, and the Coordinator end
// to end — including the merge-equivalence matrix (N-shard scatter-gather
// must agree with single-process ExecuteBatch) and the fault-path tests
// that hold the PR 3 invariant under dead and straggling shards. Every
// suite is named Dist* so scripts/check.sh can select them for the TSan
// build with ctest -R '^Dist'.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "dist/coordinator.h"
#include "dist/health.h"
#include "dist/merge.h"
#include "dist/partition.h"
#include "dist/shard.h"
#include "exec/executor.h"
#include "exec/result_serde.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "opt/split_points.h"
#include "prob/chow_liu.h"
#include "serve/query_service.h"
#include "test_util.h"

namespace caqp {
namespace {

using dist::Coordinator;
using dist::ExecutorShard;
using dist::MergeExecutionResults;
using dist::MergeIdentity;
using dist::PartitionRows;
using dist::PartitionSpec;
using dist::ShardForRow;
using dist::ShardFaultSpec;
using dist::ShardHealth;
using dist::UnknownShardResult;

// ---------------------------------------------------------------------------
// Merge semantics
// ---------------------------------------------------------------------------

ExecutionResult ResultWith(Truth v3, double cost = 0.0, int acq = 0) {
  ExecutionResult r;
  r.verdict3 = v3;
  r.verdict = v3 == Truth::kTrue;
  r.cost = cost;
  r.acquisitions = acq;
  return r;
}

TEST(DistMergeTest, VerdictFollowsThreeValuedOr) {
  const Truth kVals[] = {Truth::kFalse, Truth::kTrue, Truth::kUnknown};
  for (Truth a : kVals) {
    for (Truth b : kVals) {
      const ExecutionResult m =
          MergeExecutionResults(ResultWith(a), ResultWith(b));
      EXPECT_EQ(m.verdict3, TruthOr(a, b));
      EXPECT_EQ(m.verdict, m.verdict3 == Truth::kTrue);
    }
  }
}

TEST(DistMergeTest, DefinedVerdictsNeverFlip) {
  // kTrue absorbs everything; kFalse can only weaken to kUnknown.
  EXPECT_EQ(MergeExecutionResults(ResultWith(Truth::kTrue),
                                  ResultWith(Truth::kUnknown))
                .verdict3,
            Truth::kTrue);
  EXPECT_EQ(MergeExecutionResults(ResultWith(Truth::kFalse),
                                  ResultWith(Truth::kUnknown))
                .verdict3,
            Truth::kUnknown);
  EXPECT_EQ(MergeExecutionResults(ResultWith(Truth::kFalse),
                                  ResultWith(Truth::kFalse))
                .verdict3,
            Truth::kFalse);
}

TEST(DistMergeTest, IdentityLeavesResultUnchanged) {
  ExecutionResult r = ResultWith(Truth::kTrue, 12.5, 3);
  r.retries = 2;
  r.aborted = false;
  r.acquired.Insert(1);
  r.acquired.Insert(3);
  r.failed.Insert(2);
  for (const ExecutionResult& m :
       {MergeExecutionResults(MergeIdentity(), r),
        MergeExecutionResults(r, MergeIdentity())}) {
    EXPECT_EQ(m.verdict3, r.verdict3);
    EXPECT_EQ(m.verdict, r.verdict);
    EXPECT_EQ(m.aborted, r.aborted);
    EXPECT_EQ(m.cost, r.cost);
    EXPECT_EQ(m.acquisitions, r.acquisitions);
    EXPECT_EQ(m.retries, r.retries);
    EXPECT_EQ(m.acquired.bits, r.acquired.bits);
    EXPECT_EQ(m.failed.bits, r.failed.bits);
  }
}

TEST(DistMergeTest, CostsSumAndSetsUnion) {
  ExecutionResult a = ResultWith(Truth::kFalse, 10.0, 2);
  a.retries = 1;
  a.acquired.Insert(0);
  a.failed.Insert(3);
  ExecutionResult b = ResultWith(Truth::kTrue, 2.5, 1);
  b.retries = 4;
  b.aborted = true;
  b.acquired.Insert(1);
  b.failed.Insert(3);

  const ExecutionResult m = MergeExecutionResults(a, b);
  EXPECT_EQ(m.verdict3, Truth::kTrue);
  EXPECT_TRUE(m.aborted);
  EXPECT_DOUBLE_EQ(m.cost, 12.5);
  EXPECT_EQ(m.acquisitions, 3);
  EXPECT_EQ(m.retries, 5);
  EXPECT_TRUE(m.acquired.Contains(0));
  EXPECT_TRUE(m.acquired.Contains(1));
  EXPECT_EQ(m.acquired.Count(), 2u);
  EXPECT_TRUE(m.failed.Contains(3));
  EXPECT_EQ(m.failed.Count(), 1u);
}

TEST(DistMergeTest, CommutativeAndAssociative) {
  ExecutionResult a = ResultWith(Truth::kFalse, 1.0, 1);
  ExecutionResult b = ResultWith(Truth::kUnknown, 2.0, 2);
  ExecutionResult c = ResultWith(Truth::kTrue, 4.0, 4);
  const ExecutionResult ab_c =
      MergeExecutionResults(MergeExecutionResults(a, b), c);
  const ExecutionResult a_bc =
      MergeExecutionResults(a, MergeExecutionResults(b, c));
  const ExecutionResult ba_c =
      MergeExecutionResults(MergeExecutionResults(b, a), c);
  EXPECT_EQ(ab_c.verdict3, a_bc.verdict3);
  EXPECT_DOUBLE_EQ(ab_c.cost, a_bc.cost);
  EXPECT_EQ(ab_c.acquisitions, a_bc.acquisitions);
  EXPECT_EQ(ab_c.verdict3, ba_c.verdict3);
  EXPECT_EQ(ab_c.acquisitions, ba_c.acquisitions);
}

TEST(DistMergeTest, UnknownShardResultCannotClaimAnything) {
  const ExecutionResult u = UnknownShardResult();
  EXPECT_EQ(u.verdict3, Truth::kUnknown);
  EXPECT_FALSE(u.verdict);
  EXPECT_EQ(u.cost, 0.0);
  EXPECT_EQ(u.acquisitions, 0);
  EXPECT_EQ(u.acquired.Count(), 0u);
  // Merging a lost shard weakens kFalse but never flips kTrue.
  EXPECT_EQ(MergeExecutionResults(ResultWith(Truth::kTrue), u).verdict3,
            Truth::kTrue);
  EXPECT_EQ(MergeExecutionResults(ResultWith(Truth::kFalse), u).verdict3,
            Truth::kUnknown);
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

TEST(DistPartitionTest, PartitionIsDisjointAndComplete) {
  for (const PartitionSpec& spec :
       {PartitionSpec::Hash(1), PartitionSpec::Hash(3), PartitionSpec::Hash(8),
        PartitionSpec::Range(1), PartitionSpec::Range(3),
        PartitionSpec::Range(8)}) {
    for (size_t rows : {0u, 1u, 7u, 100u, 1000u}) {
      const auto parts = PartitionRows(spec, rows);
      ASSERT_EQ(parts.size(), spec.num_shards);
      std::vector<int> seen(rows, 0);
      for (size_t s = 0; s < parts.size(); ++s) {
        for (size_t i = 0; i < parts[s].size(); ++i) {
          const RowId r = parts[s][i];
          ASSERT_LT(r, rows);
          ++seen[r];
          EXPECT_EQ(ShardForRow(spec, rows, r), s);
          if (i > 0) {
            EXPECT_LT(parts[s][i - 1], r);  // ascending
          }
        }
      }
      for (size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(seen[r], 1) << "row " << r << " covered " << seen[r]
                              << " times";
      }
    }
  }
}

TEST(DistPartitionTest, DeterministicAcrossCalls) {
  const PartitionSpec spec = PartitionSpec::Hash(4);
  EXPECT_EQ(PartitionRows(spec, 500), PartitionRows(spec, 500));
}

TEST(DistPartitionTest, RangeBlocksAreContiguous) {
  const auto parts = PartitionRows(PartitionSpec::Range(4), 10);
  // ceil(10/4) = 3 rows per block: [0..2][3..5][6..8][9].
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], (std::vector<RowId>{0, 1, 2}));
  EXPECT_EQ(parts[1], (std::vector<RowId>{3, 4, 5}));
  EXPECT_EQ(parts[2], (std::vector<RowId>{6, 7, 8}));
  EXPECT_EQ(parts[3], (std::vector<RowId>{9}));
}

TEST(DistPartitionTest, HashSeedChangesPlacement) {
  PartitionSpec a = PartitionSpec::Hash(4);
  PartitionSpec b = PartitionSpec::Hash(4);
  b.hash_seed = 12345;
  EXPECT_NE(PartitionRows(a, 1000), PartitionRows(b, 1000));
}

TEST(DistPartitionTest, ParseScheme) {
  ASSERT_TRUE(PartitionSpec::ParseScheme("hash").ok());
  EXPECT_EQ(PartitionSpec::ParseScheme("hash").value(),
            PartitionSpec::Scheme::kHash);
  ASSERT_TRUE(PartitionSpec::ParseScheme("range").ok());
  EXPECT_EQ(PartitionSpec::ParseScheme("range").value(),
            PartitionSpec::Scheme::kRange);
  EXPECT_FALSE(PartitionSpec::ParseScheme("ring").ok());
  EXPECT_FALSE(PartitionSpec::ParseScheme("").ok());
}

// ---------------------------------------------------------------------------
// Shard health machine
// ---------------------------------------------------------------------------

TEST(DistHealthTest, DegradesThenDiesThenRecovers) {
  ShardHealth::Policy policy;
  policy.dead_after = 3;
  policy.recover_after = 2;
  policy.probe_every = 4;
  ShardHealth h(policy);
  EXPECT_EQ(h.state(), ShardHealth::State::kHealthy);
  EXPECT_TRUE(h.ShouldAttempt(1));

  EXPECT_EQ(h.OnFailure(), ShardHealth::State::kDegraded);
  EXPECT_TRUE(h.ShouldAttempt(1));  // degraded shards are still attempted
  EXPECT_EQ(h.OnFailure(), ShardHealth::State::kDegraded);
  EXPECT_EQ(h.OnFailure(), ShardHealth::State::kDead);

  // Dead: only probe slots are attempted.
  EXPECT_FALSE(h.ShouldAttempt(1));
  EXPECT_FALSE(h.ShouldAttempt(5));
  EXPECT_TRUE(h.ShouldAttempt(4));
  EXPECT_TRUE(h.ShouldAttempt(8));

  // A successful probe revives into kDegraded, then recover_after
  // consecutive successes earn kHealthy back.
  EXPECT_EQ(h.OnSuccess(), ShardHealth::State::kDegraded);
  EXPECT_EQ(h.OnSuccess(), ShardHealth::State::kHealthy);
  EXPECT_TRUE(h.ShouldAttempt(1));
}

TEST(DistHealthTest, FlappingStaysDegraded) {
  ShardHealth::Policy policy;
  policy.dead_after = 3;
  policy.recover_after = 2;
  ShardHealth h(policy);
  for (int i = 0; i < 10; ++i) {
    h.OnFailure();
    EXPECT_EQ(h.OnSuccess(), ShardHealth::State::kDegraded)
        << "alternating streaks must not reach kHealthy or kDead";
  }
}

TEST(DistHealthTest, ProbeDisabledMeansDeadStaysDead) {
  ShardHealth::Policy policy;
  policy.dead_after = 1;
  policy.probe_every = 0;
  ShardHealth h(policy);
  EXPECT_EQ(h.OnFailure(), ShardHealth::State::kDead);
  for (uint64_t seq = 0; seq < 64; ++seq) EXPECT_FALSE(h.ShouldAttempt(seq));
}

TEST(DistHealthTest, LongRunsSaturateStreaks) {
  ShardHealth h;  // default policy
  for (int i = 0; i < 1000; ++i) h.OnFailure();
  EXPECT_EQ(h.state(), ShardHealth::State::kDead);
  h.OnSuccess();  // probe
  EXPECT_EQ(h.state(), ShardHealth::State::kDegraded);
}

// ---------------------------------------------------------------------------
// ExecutionResult wire round-trip (deterministic cases; mutation fuzzing
// lives in serde_fuzz_test.cc)
// ---------------------------------------------------------------------------

TEST(DistResultSerdeTest, RoundTripsEveryVerdict) {
  for (Truth v3 : {Truth::kFalse, Truth::kTrue, Truth::kUnknown}) {
    ExecutionResult r = ResultWith(v3, 123.456, 3);
    r.retries = 7;
    r.aborted = v3 == Truth::kUnknown;
    r.acquired.Insert(0);
    r.acquired.Insert(5);
    r.failed.Insert(2);
    const std::vector<uint8_t> bytes = SerializeExecutionResult(r);
    const Result<ExecutionResult> back = DeserializeExecutionResult(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back.value().verdict3, r.verdict3);
    EXPECT_EQ(back.value().verdict, r.verdict);
    EXPECT_EQ(back.value().aborted, r.aborted);
    EXPECT_EQ(back.value().cost, r.cost);
    EXPECT_EQ(back.value().acquisitions, r.acquisitions);
    EXPECT_EQ(back.value().retries, r.retries);
    EXPECT_EQ(back.value().acquired.bits, r.acquired.bits);
    EXPECT_EQ(back.value().failed.bits, r.failed.bits);
  }
}

TEST(DistResultSerdeTest, RejectsCorruptEncodings) {
  const std::vector<uint8_t> good =
      SerializeExecutionResult(ResultWith(Truth::kTrue, 1.0, 1));
  ASSERT_TRUE(DeserializeExecutionResult(good).ok());

  // Wrong version byte.
  std::vector<uint8_t> bad = good;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(DeserializeExecutionResult(bad).ok());

  // verdict3 out of range.
  bad = good;
  bad[1] = 3;
  EXPECT_FALSE(DeserializeExecutionResult(bad).ok());

  // Reserved flag bits must be zero.
  bad = good;
  bad[2] |= 0x80;
  EXPECT_FALSE(DeserializeExecutionResult(bad).ok());

  // Truncation at every prefix length.
  for (size_t n = 0; n < good.size(); ++n) {
    const std::vector<uint8_t> prefix(good.begin(), good.begin() + n);
    EXPECT_FALSE(DeserializeExecutionResult(prefix).ok()) << "prefix " << n;
  }

  // Trailing garbage.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(DeserializeExecutionResult(bad).ok());
}

// ---------------------------------------------------------------------------
// Shard fault-profile mini-language
// ---------------------------------------------------------------------------

TEST(DistFaultSpecTest, ParsesKillAndDelay) {
  const Result<ShardFaultSpec> spec =
      ShardFaultSpec::Parse("kill@1=3,delay@2=50");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec.value().entries.size(), 2u);
  const ShardFaultSpec::Entry* kill = spec.value().FindEntry(1);
  ASSERT_NE(kill, nullptr);
  EXPECT_EQ(kill->kill_after, 3);
  const ShardFaultSpec::Entry* delay = spec.value().FindEntry(2);
  ASSERT_NE(delay, nullptr);
  EXPECT_DOUBLE_EQ(delay->delay_seconds, 0.05);
  EXPECT_EQ(spec.value().FindEntry(0), nullptr);
}

TEST(DistFaultSpecTest, KillDefaultsToImmediate) {
  const Result<ShardFaultSpec> spec = ShardFaultSpec::Parse("kill@0");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec.value().entries.size(), 1u);
  EXPECT_EQ(spec.value().entries[0].kill_after, 0);
}

TEST(DistFaultSpecTest, RejectsMalformedDirectives) {
  EXPECT_FALSE(ShardFaultSpec::Parse("explode@1").ok());
  EXPECT_FALSE(ShardFaultSpec::Parse("kill@x").ok());
  EXPECT_FALSE(ShardFaultSpec::Parse("delay@1").ok());
  EXPECT_FALSE(ShardFaultSpec::Parse("delay@1=abc").ok());
}

TEST(DistFaultSpecTest, RoundTripsThroughToString) {
  const Result<ShardFaultSpec> spec =
      ShardFaultSpec::Parse("kill@1=3,delay@2=50");
  ASSERT_TRUE(spec.ok());
  const Result<ShardFaultSpec> again =
      ShardFaultSpec::Parse(spec.value().ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().entries.size(), spec.value().entries.size());
}

// ---------------------------------------------------------------------------
// Coordinator end to end
// ---------------------------------------------------------------------------

struct DistFixture {
  Schema schema = testing_util::SmallSchema();
  Dataset data = testing_util::CorrelatedDataset(schema, 6000, 17);
  PerAttributeCostModel cm{schema};
  SplitPointSet splits = SplitPointSet::AllPoints(schema);
  GreedySeqSolver solver;
  ChowLiuEstimator estimator{data};
  std::unique_ptr<GreedyPlanner> greedy;
  std::unique_ptr<NaivePlanner> naive;

  DistFixture() {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &solver;
    opts.max_splits = 3;
    greedy = std::make_unique<GreedyPlanner>(estimator, cm, opts);
    naive = std::make_unique<NaivePlanner>(estimator, cm);
  }

  serve::PlanBuilderFactory Factory(const Planner& planner,
                                    uint64_t fingerprint) {
    return [&planner, fingerprint] {
      return std::make_unique<serve::SharedPlannerBuilder>(planner,
                                                           fingerprint);
    };
  }

  Coordinator MakeCoordinator(Coordinator::Options opts,
                              const Planner* planner = nullptr) {
    const Planner& p = planner != nullptr ? *planner : *greedy;
    return Coordinator(data, cm, Factory(p, 21), std::move(opts));
  }

  Query MidQuery() const {
    return Query::Conjunction(
        {Predicate(2, 1, 3), Predicate(3, 2, 4), Predicate(0, 1, 2)});
  }
};

/// Checks one distributed response against single-process ExecuteBatch run
/// with the *same compiled plan* over all rows: row verdicts, match count,
/// acquisition counts exact; total cost within FP-reassociation tolerance
/// (shards sum their partitions independently, so cross-shard addition
/// order differs from the flat row-order fold).
void ExpectMatchesBatch(const DistFixture& fx, const Query& q,
                        const Coordinator::Response& resp) {
  ASSERT_TRUE(resp.ok()) << resp.status.ToString();
  ASSERT_NE(resp.plan, nullptr);
  ASSERT_EQ(resp.row_verdicts.size(), fx.data.num_rows());

  std::vector<RowId> all_rows(fx.data.num_rows());
  for (RowId r = 0; r < fx.data.num_rows(); ++r) all_rows[r] = r;
  std::vector<uint8_t> verdicts;
  const BatchExecutionStats stats =
      ExecuteBatch(*resp.plan, fx.data, all_rows, fx.cm, &verdicts);

  size_t matches = 0;
  for (RowId r = 0; r < fx.data.num_rows(); ++r) {
    ASSERT_NE(resp.row_verdicts[r], Truth::kUnknown)
        << "fault-free run degraded row " << r;
    EXPECT_EQ(resp.row_verdicts[r] == Truth::kTrue, verdicts[r] != 0)
        << "row " << r;
    // Ground truth, independently of the plan.
    EXPECT_EQ(resp.row_verdicts[r] == Truth::kTrue,
              q.Matches(fx.data.GetTuple(r)))
        << "row " << r;
    if (verdicts[r] != 0) ++matches;
  }
  EXPECT_EQ(resp.matches, matches);
  EXPECT_EQ(resp.matches, stats.matches);
  EXPECT_EQ(resp.unknown_rows, 0u);
  EXPECT_EQ(static_cast<size_t>(resp.merged.acquisitions),
            stats.total_acquisitions);
  EXPECT_EQ(resp.merged.verdict3,
            matches > 0 ? Truth::kTrue : Truth::kFalse);
  EXPECT_NEAR(resp.merged.cost, stats.total_cost,
              1e-9 * (1.0 + std::abs(stats.total_cost)));
}

TEST(DistCoordinatorTest, MergeEquivalenceMatrix) {
  DistFixture fx;
  const Planner* planners[] = {fx.greedy.get(), fx.naive.get()};
  const PartitionSpec specs[] = {
      PartitionSpec::Hash(1), PartitionSpec::Hash(4), PartitionSpec::Range(2),
      PartitionSpec::Range(4)};
  for (const Planner* planner : planners) {
    for (const PartitionSpec& spec : specs) {
      Coordinator::Options opts;
      opts.partition = spec;
      Coordinator coord = fx.MakeCoordinator(opts, planner);
      ASSERT_EQ(coord.num_shards(), spec.num_shards);

      Rng rng(91);
      for (int i = 0; i < 8; ++i) {
        const Query q =
            i == 0 ? fx.MidQuery()
                   : testing_util::RandomConjunctiveQuery(fx.schema, rng);
        const Coordinator::Response resp = coord.Execute(q);
        SCOPED_TRACE(std::string(planner->Name()) + " scheme=" +
                     dist::PartitionSchemeName(spec.scheme) + " shards=" +
                     std::to_string(spec.num_shards) + " query=" +
                     std::to_string(i));
        EXPECT_EQ(resp.shards_ok, spec.num_shards);
        EXPECT_FALSE(resp.degraded());
        ExpectMatchesBatch(fx, q, resp);
      }
    }
  }
}

TEST(DistCoordinatorTest, PlanCacheAndSingleFlightAreUsed) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Hash(3);
  Coordinator coord = fx.MakeCoordinator(opts);
  const Query q = fx.MidQuery();

  const Coordinator::Response first = coord.Execute(q);
  EXPECT_TRUE(first.planned);
  EXPECT_FALSE(first.cache_hit);
  const Coordinator::Response second = coord.Execute(q);
  EXPECT_FALSE(second.planned);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.plan, first.plan);
  EXPECT_EQ(second.query_sig, first.query_sig);

  // Shuffled predicates canonicalize to the same signature and plan.
  const Query shuffled = Query::Conjunction(
      {Predicate(0, 1, 2), Predicate(2, 1, 3), Predicate(3, 2, 4)});
  const Coordinator::Response third = coord.Execute(shuffled);
  EXPECT_TRUE(third.cache_hit);
  EXPECT_EQ(third.plan, first.plan);

  const dist::DistReport report = coord.Report();
  EXPECT_EQ(report.queries, 3u);
  EXPECT_EQ(report.planned, 1u);
  EXPECT_EQ(report.cache_hits, 2u);
}

TEST(DistCoordinatorTest, InvalidateCacheForcesReplan) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Hash(2);
  Coordinator coord = fx.MakeCoordinator(opts);
  const Query q = fx.MidQuery();

  const uint64_t v0 = coord.estimator_version();
  coord.Execute(q);
  coord.InvalidateCache();
  EXPECT_GT(coord.estimator_version(), v0);
  const Coordinator::Response resp = coord.Execute(q);
  EXPECT_TRUE(resp.planned);
  EXPECT_FALSE(resp.cache_hit);
  ExpectMatchesBatch(fx, q, resp);
}

TEST(DistCoordinatorTest, DeadShardDegradesOnlyItsPartition) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Hash(4);
  Coordinator coord = fx.MakeCoordinator(opts);
  const Query q = fx.MidQuery();
  coord.Execute(q);  // warm the plan cache while everything is healthy

  const size_t victim = 2;
  coord.KillShard(victim);
  const Coordinator::Response resp = coord.Execute(q);

  // PR 3 contract: infrastructure failure degrades the answer, never the
  // request.
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.degraded());
  EXPECT_EQ(resp.shards_total, 4u);
  EXPECT_EQ(resp.shards_ok, 3u);
  EXPECT_EQ(resp.shards_degraded, 1u);
  ASSERT_EQ(resp.shard_status.size(), 4u);
  EXPECT_EQ(resp.shard_status[victim].code(),
            StatusCode::kShardUnavailable);

  // The victim's rows — and only those — are Unknown; every defined verdict
  // agrees with ground truth.
  const std::vector<RowId>& dead_rows = coord.shard_rows(victim);
  EXPECT_EQ(resp.unknown_rows, dead_rows.size());
  std::vector<bool> is_dead_row(fx.data.num_rows(), false);
  for (RowId r : dead_rows) is_dead_row[r] = true;
  for (RowId r = 0; r < fx.data.num_rows(); ++r) {
    if (is_dead_row[r]) {
      EXPECT_EQ(resp.row_verdicts[r], Truth::kUnknown) << "row " << r;
    } else {
      ASSERT_NE(resp.row_verdicts[r], Truth::kUnknown) << "row " << r;
      EXPECT_EQ(resp.row_verdicts[r] == Truth::kTrue,
                q.Matches(fx.data.GetTuple(r)))
          << "row " << r;
    }
  }
}

TEST(DistCoordinatorTest, DeadShardIsSkippedThenRecoversThroughProbes) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Hash(2);
  opts.health.dead_after = 2;
  opts.health.recover_after = 1;
  opts.health.probe_every = 4;
  Coordinator coord = fx.MakeCoordinator(opts);
  const Query q = fx.MidQuery();

  coord.KillShard(0);
  // Fail it into kDead.
  while (coord.shard_state(0) != ShardHealth::State::kDead) {
    ASSERT_TRUE(coord.Execute(q).ok());
  }

  // Once dead, non-probe queries skip the shard without attempting it.
  bool saw_skip = false;
  for (uint64_t i = 0; i + 1 < opts.health.probe_every && !saw_skip; ++i) {
    const Coordinator::Response resp = coord.Execute(q);
    if (resp.shards_skipped == 1) {
      saw_skip = true;
      EXPECT_EQ(resp.shard_status[0].code(), StatusCode::kShardUnavailable);
      EXPECT_EQ(resp.unknown_rows, coord.shard_rows(0).size());
    }
  }
  EXPECT_TRUE(saw_skip);

  // Revive the process; a probe query lets health earn its way back, after
  // which answers are whole again.
  coord.ReviveShard(0);
  for (int i = 0; i < 3 * static_cast<int>(opts.health.probe_every); ++i) {
    if (coord.shard_state(0) == ShardHealth::State::kHealthy &&
        !coord.Execute(q).degraded()) {
      break;
    }
    coord.Execute(q);
  }
  EXPECT_EQ(coord.shard_state(0), ShardHealth::State::kHealthy);
  const Coordinator::Response whole = coord.Execute(q);
  EXPECT_FALSE(whole.degraded());
  EXPECT_EQ(whole.unknown_rows, 0u);
  EXPECT_GT(coord.Report().probes, 0u);
}

TEST(DistCoordinatorTest, StragglerTimesOutAndDegrades) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Range(2);
  // Generous margins: shard 0 must finish inside the deadline even on a
  // single-core runner under ASan/TSan, and shard 1's sleep must exceed the
  // deadline by a wide factor so only the straggler times out.
  opts.shard_deadline_seconds = 1.0;
  const Result<ShardFaultSpec> faults = ShardFaultSpec::Parse("delay@1=4000");
  ASSERT_TRUE(faults.ok());
  opts.shard_faults = faults.value();
  Coordinator coord = fx.MakeCoordinator(opts);

  const Coordinator::Response resp = coord.Execute(fx.MidQuery());
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.degraded());
  EXPECT_EQ(resp.shard_status[1].code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resp.unknown_rows, coord.shard_rows(1).size());
  // Shard 0 is unaffected by its sibling's sleep.
  EXPECT_TRUE(resp.shard_status[0].ok());

  const dist::DistReport report = coord.Report();
  EXPECT_GE(report.stragglers, 1u);
  EXPECT_GE(report.degraded_queries, 1u);
  EXPECT_GE(report.shards[1].timeouts, 1u);
}

TEST(DistCoordinatorTest, KillAfterScheduleFiresMidStream) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Hash(2);
  const Result<ShardFaultSpec> faults = ShardFaultSpec::Parse("kill@1=2");
  ASSERT_TRUE(faults.ok());
  opts.shard_faults = faults.value();
  Coordinator coord = fx.MakeCoordinator(opts);
  const Query q = fx.MidQuery();

  // The shard serves its first two requests, then dies.
  EXPECT_FALSE(coord.Execute(q).degraded());
  EXPECT_FALSE(coord.Execute(q).degraded());
  const Coordinator::Response dead = coord.Execute(q);
  EXPECT_TRUE(dead.degraded());
  EXPECT_EQ(dead.shard_status[1].code(), StatusCode::kShardUnavailable);
}

TEST(DistCoordinatorTest, RowLevelFaultsDegradeRowsNotShards) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Hash(2);
  const Result<FaultSpec> faults = FaultSpec::Parse("transient@2=0.5");
  ASSERT_TRUE(faults.ok()) << faults.status().ToString();
  opts.acquisition_faults = faults.value();
  opts.row_policy = DegradationPolicy::UnknownVerdict();
  Coordinator coord = fx.MakeCoordinator(opts);

  // A query over the faulty attribute: some rows degrade to Unknown, but
  // the shards all answer and every defined verdict is correct.
  const Query q = Query::Conjunction({Predicate(2, 1, 3), Predicate(0, 1, 2)});
  const Coordinator::Response resp = coord.Execute(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.degraded());  // no shard-level degradation
  EXPECT_GT(resp.unknown_rows, 0u);
  EXPECT_LT(resp.unknown_rows, fx.data.num_rows());
  for (RowId r = 0; r < fx.data.num_rows(); ++r) {
    if (resp.row_verdicts[r] == Truth::kUnknown) continue;
    EXPECT_EQ(resp.row_verdicts[r] == Truth::kTrue,
              q.Matches(fx.data.GetTuple(r)))
        << "row " << r;
  }
}

TEST(DistCoordinatorTest, TracingCapturesShardIncidents) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Hash(3);
  opts.enable_tracing = true;
  Coordinator coord = fx.MakeCoordinator(opts);
  const Query q = fx.MidQuery();
  coord.Execute(q);

  const size_t victim = 1;
  coord.KillShard(victim);
  const Coordinator::Response resp = coord.Execute(q);
  EXPECT_TRUE(resp.degraded());

  const std::vector<obs::TraceRecorder::Incident> incidents =
      coord.trace_recorder().Incidents();
  ASSERT_FALSE(incidents.empty());
  bool found = false;
  for (const obs::TraceRecorder::Incident& inc : incidents) {
    if (inc.trace_id != resp.trace_id) continue;
    // Worker slot i+1 carries shard i.
    EXPECT_EQ(inc.worker, victim + 1);
    EXPECT_EQ(inc.reason, "shard_unavailable");
    EXPECT_EQ(inc.meta.plan_sig, resp.query_sig);
    found = true;
  }
  EXPECT_TRUE(found) << "no incident recorded for the dead shard's trace";
}

TEST(DistCoordinatorTest, CalibrationAggregatesAcrossShards) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Hash(4);
  opts.enable_calibration = true;
  Coordinator coord = fx.MakeCoordinator(opts);
  const Query q = fx.MidQuery();
  for (int i = 0; i < 3; ++i) coord.Execute(q);

  const obs::CalibrationReport report = coord.CalibrationSnapshot();
  ASSERT_FALSE(report.plans.empty());
  // Each query executes the plan once per row; all shards feed one merged
  // profile, so executions cover the whole dataset each round.
  EXPECT_EQ(report.executions, 3u * fx.data.num_rows());
  EXPECT_GT(report.realized_cost, 0.0);
}

TEST(DistCoordinatorTest, ReportJsonIsWellFormedEnough) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Range(2);
  Coordinator coord = fx.MakeCoordinator(opts);
  coord.Execute(fx.MidQuery());

  const dist::DistReport report = coord.Report();
  EXPECT_EQ(report.queries, 1u);
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.shards[0].rows + report.shards[1].rows,
            fx.data.num_rows());
  EXPECT_EQ(report.shards[0].state, ShardHealth::State::kHealthy);

  const std::string json = dist::DistReportToJson(report);
  EXPECT_NE(json.find("\"queries\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"state\""), std::string::npos);
  EXPECT_NE(json.find("healthy"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan target): concurrent clients, a fault injector thread
// flipping a shard, and report readers — defined verdicts must stay correct
// throughout.
// ---------------------------------------------------------------------------

TEST(DistCoordinatorConcurrencyTest, ConcurrentClientsWithShardFlapping) {
  DistFixture fx;
  Coordinator::Options opts;
  opts.partition = PartitionSpec::Hash(4);
  opts.health.dead_after = 2;
  opts.health.recover_after = 1;
  opts.health.probe_every = 8;
  Coordinator coord = fx.MakeCoordinator(opts);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 24;
  std::atomic<bool> stop{false};
  std::atomic<size_t> wrong{0};

  std::thread flapper([&] {
    size_t flips = 0;
    while (!stop.load(std::memory_order_acquire)) {
      coord.KillShard(3);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      coord.ReviveShard(3);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++flips;
    }
    (void)flips;
  });

  std::thread reporter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const dist::DistReport report = coord.Report();
      (void)report.queries;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + static_cast<uint64_t>(c));
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const Query q = testing_util::RandomConjunctiveQuery(fx.schema, rng);
        const Coordinator::Response resp = coord.Execute(q);
        if (!resp.ok()) {
          wrong.fetch_add(1);
          continue;
        }
        for (RowId r = 0; r < fx.data.num_rows(); ++r) {
          if (resp.row_verdicts[r] == Truth::kUnknown) continue;
          if ((resp.row_verdicts[r] == Truth::kTrue) !=
              q.Matches(fx.data.GetTuple(r))) {
            wrong.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_release);
  flapper.join();
  reporter.join();

  EXPECT_EQ(wrong.load(), 0u)
      << "a defined verdict disagreed with ground truth under shard faults";
  EXPECT_EQ(coord.Report().queries,
            static_cast<uint64_t>(kClients) * kQueriesPerClient);
}

}  // namespace
}  // namespace caqp
