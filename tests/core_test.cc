// Tests for the core data model: schema, discretizers, dataset, predicates,
// three-valued query evaluation, CSV ingestion.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/csv.h"
#include "core/dataset.h"
#include "core/discretizer.h"
#include "core/predicate.h"
#include "core/query.h"
#include "core/schema.h"

namespace caqp {
namespace {

Schema TestSchema() {
  Schema s;
  s.AddAttribute("a", 4, 1.0);
  s.AddAttribute("b", 8, 100.0);
  s.AddAttribute("c", 2, 10.0);
  return s;
}

TEST(SchemaTest, BasicAccessors) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.num_attributes(), 3u);
  EXPECT_EQ(s.name(1), "b");
  EXPECT_EQ(s.domain_size(1), 8u);
  EXPECT_EQ(s.cost(1), 100.0);
  EXPECT_EQ(s.FindAttribute("c"), 2);
  EXPECT_EQ(s.FindAttribute("zzz"), kInvalidAttr);
}

TEST(SchemaTest, FullRanges) {
  const Schema s = TestSchema();
  const auto ranges = s.FullRanges();
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (ValueRange{0, 3}));
  EXPECT_EQ(ranges[1], (ValueRange{0, 7}));
  EXPECT_EQ(ranges[2], (ValueRange{0, 1}));
}

TEST(SchemaTest, ValidRangesRejectsBadShapes) {
  const Schema s = TestSchema();
  EXPECT_TRUE(s.ValidRanges(s.FullRanges()));
  auto r = s.FullRanges();
  r[1] = ValueRange{3, 9};  // hi out of domain
  EXPECT_FALSE(s.ValidRanges(r));
  r = s.FullRanges();
  r.pop_back();
  EXPECT_FALSE(s.ValidRanges(r));
}

TEST(SchemaTest, ValidTuple) {
  const Schema s = TestSchema();
  EXPECT_TRUE(s.ValidTuple({1, 7, 0}));
  EXPECT_FALSE(s.ValidTuple({1, 8, 0}));
  EXPECT_FALSE(s.ValidTuple({1, 7}));
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(TestSchema() == TestSchema());
  Schema other = TestSchema();
  other.AddAttribute("d", 2, 1.0);
  EXPECT_FALSE(TestSchema() == other);
}

TEST(UniformDiscretizerTest, BinsAndEdges) {
  UniformDiscretizer d(0.0, 100.0, 10);
  EXPECT_EQ(d.ToBin(-5.0), 0);
  EXPECT_EQ(d.ToBin(0.0), 0);
  EXPECT_EQ(d.ToBin(5.0), 0);
  EXPECT_EQ(d.ToBin(15.0), 1);
  EXPECT_EQ(d.ToBin(99.99), 9);
  EXPECT_EQ(d.ToBin(100.0), 9);
  EXPECT_EQ(d.ToBin(1e9), 9);
  EXPECT_DOUBLE_EQ(d.BinLower(3), 30.0);
  EXPECT_DOUBLE_EQ(d.BinUpper(3), 40.0);
  EXPECT_DOUBLE_EQ(d.BinCenter(3), 35.0);
}

TEST(UniformDiscretizerTest, MonotoneOverSweep) {
  UniformDiscretizer d(-3.0, 7.0, 13);
  Value prev = 0;
  for (double x = -4.0; x <= 8.0; x += 0.01) {
    const Value b = d.ToBin(x);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, 13u);
    prev = b;
  }
}

TEST(QuantileDiscretizerTest, EquiDepthOnUniformSample) {
  Rng rng(3);
  std::vector<double> sample;
  for (int i = 0; i < 10000; ++i) sample.push_back(rng.Uniform(0, 1));
  QuantileDiscretizer d(sample, 4);
  int counts[4] = {0, 0, 0, 0};
  for (double v : sample) counts[d.ToBin(v)]++;
  for (int c : counts) EXPECT_NEAR(c, 2500, 150);
}

TEST(QuantileDiscretizerTest, HandlesDuplicateHeavySample) {
  std::vector<double> sample(1000, 5.0);
  sample.push_back(6.0);
  QuantileDiscretizer d(sample, 4);
  EXPECT_LT(d.ToBin(5.0), 4u);
  EXPECT_LT(d.ToBin(6.0), 4u);
  EXPECT_LE(d.ToBin(5.0), d.ToBin(6.0));
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset ds(TestSchema());
  ds.Append({1, 2, 0});
  ds.Append({3, 7, 1});
  EXPECT_EQ(ds.num_rows(), 2u);
  EXPECT_EQ(ds.at(0, 1), 2);
  EXPECT_EQ(ds.at(1, 2), 1);
  EXPECT_EQ(ds.GetTuple(1), (Tuple{3, 7, 1}));
  EXPECT_EQ(ds.column(0), (std::vector<Value>{1, 3}));
}

TEST(DatasetTest, AppendColumns) {
  Dataset ds(TestSchema());
  ds.AppendColumns({{0, 1, 2}, {5, 6, 7}, {1, 0, 1}});
  EXPECT_EQ(ds.num_rows(), 3u);
  EXPECT_EQ(ds.GetTuple(2), (Tuple{2, 7, 1}));
}

TEST(DatasetTest, SplitAtPreservesOrderAndContent) {
  Dataset ds(TestSchema());
  for (Value v = 0; v < 4; ++v) ds.Append({v, v, static_cast<Value>(v % 2)});
  auto [head, tail] = ds.SplitAt(3);
  EXPECT_EQ(head.num_rows(), 3u);
  EXPECT_EQ(tail.num_rows(), 1u);
  EXPECT_EQ(tail.GetTuple(0), (Tuple{3, 3, 1}));
}

TEST(DatasetTest, SplitFraction) {
  Dataset ds(TestSchema());
  for (int i = 0; i < 10; ++i) ds.Append({0, 0, 0});
  auto [train, test] = ds.SplitFraction(0.7);
  EXPECT_EQ(train.num_rows(), 7u);
  EXPECT_EQ(test.num_rows(), 3u);
}

TEST(DatasetTest, Select) {
  Dataset ds(TestSchema());
  for (Value v = 0; v < 4; ++v) ds.Append({v, v, 0});
  Dataset sel = ds.Select({3, 1});
  EXPECT_EQ(sel.num_rows(), 2u);
  EXPECT_EQ(sel.at(0, 0), 3);
  EXPECT_EQ(sel.at(1, 0), 1);
}

TEST(PredicateTest, MatchesValuesAndNegation) {
  Predicate p(0, 2, 5);
  EXPECT_FALSE(p.Matches(Value{1}));
  EXPECT_TRUE(p.Matches(Value{2}));
  EXPECT_TRUE(p.Matches(Value{5}));
  EXPECT_FALSE(p.Matches(Value{6}));
  Predicate np(0, 2, 5, /*neg=*/true);
  EXPECT_TRUE(np.Matches(Value{1}));
  EXPECT_FALSE(np.Matches(Value{3}));
}

TEST(PredicateTest, ThreeValuedRangeEvaluation) {
  Predicate p(0, 2, 5);
  EXPECT_EQ(p.EvaluateOnRange({3, 4}), Truth::kTrue);
  EXPECT_EQ(p.EvaluateOnRange({2, 5}), Truth::kTrue);
  EXPECT_EQ(p.EvaluateOnRange({6, 9}), Truth::kFalse);
  EXPECT_EQ(p.EvaluateOnRange({0, 1}), Truth::kFalse);
  EXPECT_EQ(p.EvaluateOnRange({0, 2}), Truth::kUnknown);
  EXPECT_EQ(p.EvaluateOnRange({5, 9}), Truth::kUnknown);
  EXPECT_EQ(p.EvaluateOnRange({0, 9}), Truth::kUnknown);
}

TEST(PredicateTest, ThreeValuedNegated) {
  Predicate p(0, 2, 5, /*neg=*/true);
  EXPECT_EQ(p.EvaluateOnRange({3, 4}), Truth::kFalse);
  EXPECT_EQ(p.EvaluateOnRange({6, 9}), Truth::kTrue);
  EXPECT_EQ(p.EvaluateOnRange({0, 9}), Truth::kUnknown);
}

TEST(PredicateTest, RangeEvalConsistentWithPointEval) {
  // Property: EvaluateOnRange == kTrue iff all points match, kFalse iff none.
  Rng rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    const Value lo = static_cast<Value>(rng.UniformInt(0, 9));
    const Value hi = static_cast<Value>(rng.UniformInt(lo, 9));
    Predicate p(0, lo, hi, rng.Bernoulli(0.5));
    const Value rlo = static_cast<Value>(rng.UniformInt(0, 9));
    const Value rhi = static_cast<Value>(rng.UniformInt(rlo, 9));
    int matches = 0;
    for (Value v = rlo; v <= rhi; ++v) matches += p.Matches(v) ? 1 : 0;
    const int total = rhi - rlo + 1;
    const Truth t = p.EvaluateOnRange({rlo, rhi});
    if (matches == total) {
      EXPECT_EQ(t, Truth::kTrue);
    } else if (matches == 0) {
      EXPECT_EQ(t, Truth::kFalse);
    } else {
      EXPECT_EQ(t, Truth::kUnknown);
    }
  }
}

TEST(PredicateTest, EqualityAndHashConsistent) {
  const Predicate p(2, 1, 3);
  EXPECT_EQ(p, Predicate(2, 1, 3));
  EXPECT_EQ(p.Hash(), Predicate(2, 1, 3).Hash());
  // Every field participates in both == and the hash.
  EXPECT_NE(p, Predicate(1, 1, 3));
  EXPECT_NE(p.Hash(), Predicate(1, 1, 3).Hash());
  EXPECT_NE(p, Predicate(2, 0, 3));
  EXPECT_NE(p.Hash(), Predicate(2, 0, 3).Hash());
  EXPECT_NE(p, Predicate(2, 1, 2));
  EXPECT_NE(p.Hash(), Predicate(2, 1, 2).Hash());
  EXPECT_NE(p, Predicate(2, 1, 3, /*negated=*/true));
  EXPECT_NE(p.Hash(), Predicate(2, 1, 3, /*negated=*/true).Hash());
}

TEST(PredicateTest, HashHasNoCheapCollisionsOverSmallDomain) {
  // The field packing is injective, so distinct (attr, lo, hi, negated)
  // tuples must never collide on a small exhaustive sweep.
  std::vector<uint64_t> hashes;
  for (AttrId a = 0; a < 4; ++a) {
    for (Value lo = 0; lo < 6; ++lo) {
      for (Value hi = lo; hi < 6; ++hi) {
        for (int neg = 0; neg < 2; ++neg) {
          hashes.push_back(Predicate(a, lo, hi, neg != 0).Hash());
        }
      }
    }
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

TEST(QueryTest, EqualityIsStructural) {
  const Query a = Query::Conjunction({Predicate(0, 1, 2), Predicate(1, 0, 3)});
  const Query b = Query::Conjunction({Predicate(0, 1, 2), Predicate(1, 0, 3)});
  const Query reordered =
      Query::Conjunction({Predicate(1, 0, 3), Predicate(0, 1, 2)});
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == reordered);  // same semantics, different structure
  EXPECT_NE(a.Hash(), reordered.Hash());
}

TEST(QueryTest, HashSeparatesConjunctBoundaries) {
  // Same flat predicate list split differently across conjuncts must hash
  // apart: AND(p, q) vs OR(p, q).
  const Query anded =
      Query::Conjunction({Predicate(0, 1, 2), Predicate(1, 0, 3)});
  const Query ored =
      Query::Disjunction({{Predicate(0, 1, 2)}, {Predicate(1, 0, 3)}});
  EXPECT_FALSE(anded == ored);
  EXPECT_NE(anded.Hash(), ored.Hash());
}

TEST(TruthTest, ThreeValuedConnectives) {
  EXPECT_EQ(TruthAnd(Truth::kTrue, Truth::kUnknown), Truth::kUnknown);
  EXPECT_EQ(TruthAnd(Truth::kFalse, Truth::kUnknown), Truth::kFalse);
  EXPECT_EQ(TruthOr(Truth::kTrue, Truth::kUnknown), Truth::kTrue);
  EXPECT_EQ(TruthOr(Truth::kFalse, Truth::kUnknown), Truth::kUnknown);
  EXPECT_EQ(TruthNot(Truth::kUnknown), Truth::kUnknown);
  EXPECT_EQ(TruthNot(Truth::kTrue), Truth::kFalse);
}

TEST(QueryTest, ConjunctiveMatches) {
  Query q = Query::Conjunction({Predicate(0, 1, 2), Predicate(1, 0, 3)});
  EXPECT_TRUE(q.IsConjunctive());
  EXPECT_TRUE(q.Matches({1, 3, 0}));
  EXPECT_FALSE(q.Matches({0, 3, 0}));
  EXPECT_FALSE(q.Matches({1, 4, 0}));
}

TEST(QueryTest, DisjunctiveMatches) {
  Query q = Query::Disjunction(
      {{Predicate(0, 1, 1)}, {Predicate(1, 5, 7), Predicate(2, 1, 1)}});
  EXPECT_FALSE(q.IsConjunctive());
  EXPECT_TRUE(q.Matches({1, 0, 0}));   // first conjunct
  EXPECT_TRUE(q.Matches({0, 6, 1}));   // second conjunct
  EXPECT_FALSE(q.Matches({0, 6, 0}));  // second conjunct half-satisfied
}

TEST(QueryTest, RangeEvaluationMatchesBruteForce) {
  // Property: three-valued evaluation against ranges is exactly the
  // quantified truth over all tuples in the box.
  const Schema s = TestSchema();
  Rng rng(21);
  for (int iter = 0; iter < 100; ++iter) {
    Conjunct c1 = {Predicate(0, 1, 2), Predicate(1, 2, 6)};
    Conjunct c2 = {Predicate(2, 1, 1)};
    Query q = (iter % 2 == 0) ? Query::Conjunction(c1)
                              : Query::Disjunction({c1, c2});
    std::vector<ValueRange> ranges(3);
    for (int a = 0; a < 3; ++a) {
      const uint32_t k = s.domain_size(static_cast<AttrId>(a));
      const Value lo = static_cast<Value>(rng.UniformInt(0, k - 1));
      const Value hi = static_cast<Value>(rng.UniformInt(lo, k - 1));
      ranges[a] = ValueRange{lo, hi};
    }
    int sat = 0, total = 0;
    Tuple t(3);
    for (Value a = ranges[0].lo; a <= ranges[0].hi; ++a) {
      for (Value b = ranges[1].lo; b <= ranges[1].hi; ++b) {
        for (Value cc = ranges[2].lo; cc <= ranges[2].hi; ++cc) {
          t = {a, b, cc};
          ++total;
          sat += q.Matches(t) ? 1 : 0;
        }
      }
    }
    const Truth truth = q.EvaluateOnRanges(ranges);
    if (sat == total) {
      EXPECT_EQ(truth, Truth::kTrue);
    } else if (sat == 0) {
      EXPECT_EQ(truth, Truth::kFalse);
    } else {
      EXPECT_EQ(truth, Truth::kUnknown);
    }
  }
}

TEST(QueryTest, ReferencedAttributesSortedUnique) {
  Query q = Query::Disjunction(
      {{Predicate(2, 0, 1), Predicate(0, 0, 1)}, {Predicate(2, 1, 1)}});
  EXPECT_EQ(q.ReferencedAttributes(), (std::vector<AttrId>{0, 2}));
}

TEST(QueryTest, ValidForChecksDomains) {
  const Schema s = TestSchema();
  EXPECT_TRUE(Query::Conjunction({Predicate(0, 0, 3)}).ValidFor(s));
  EXPECT_FALSE(Query::Conjunction({Predicate(0, 0, 4)}).ValidFor(s));  // hi
  EXPECT_FALSE(Query::Conjunction({Predicate(5, 0, 1)}).ValidFor(s));  // attr
  // Duplicate attribute within a conjunct.
  EXPECT_FALSE(
      Query::Conjunction({Predicate(0, 0, 1), Predicate(0, 2, 3)}).ValidFor(s));
  // Same attribute across different conjuncts is fine.
  EXPECT_TRUE(Query::Disjunction({{Predicate(0, 0, 1)}, {Predicate(0, 2, 3)}})
                  .ValidFor(s));
}

TEST(QueryTest, ToStringIsReadable) {
  const Schema s = TestSchema();
  Query q = Query::Conjunction({Predicate(0, 1, 2), Predicate(1, 0, 3, true)});
  EXPECT_EQ(q.ToString(s), "a in [1,2] AND b not in [0,3]");
}

TEST(CsvTest, ParsesHeaderAndRows) {
  auto table = ParseCsv("x, y\n1, 2.5\n3, -4\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->column_names, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table->rows[1][1], -4.0);
}

TEST(CsvTest, SkipsBlankLines) {
  auto table = ParseCsv("x\n\n1\n\n2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("x,y\n1\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsNonNumericCells) {
  auto table = ParseCsv("x\nfoo\n");
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, DatasetFromCsvDiscretizes) {
  auto table = ParseCsv("t,light\n0,10\n1,500\n2,990\n3,20\n");
  ASSERT_TRUE(table.ok());
  auto ds = DatasetFromCsv(*table, {{"light", 4, 100.0}, {"t", 4, 1.0}});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_rows(), 4u);
  EXPECT_EQ(ds->schema().name(0), "light");
  EXPECT_EQ(ds->schema().cost(0), 100.0);
  // light spans [10, 990]; 10 -> bin 0, 990 -> bin 3.
  EXPECT_EQ(ds->at(0, 0), 0);
  EXPECT_EQ(ds->at(2, 0), 3);
}

TEST(CsvTest, DatasetFromCsvMissingColumn) {
  auto table = ParseCsv("x\n1\n");
  ASSERT_TRUE(table.ok());
  auto ds = DatasetFromCsv(*table, {{"y", 4, 1.0}});
  EXPECT_EQ(ds.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, DatasetFromCsvConstantColumn) {
  auto table = ParseCsv("x\n5\n5\n5\n");
  ASSERT_TRUE(table.ok());
  auto ds = DatasetFromCsv(*table, {{"x", 4, 1.0}});
  ASSERT_TRUE(ds.ok());
  for (RowId r = 0; r < 3; ++r) EXPECT_EQ(ds->at(r, 0), 0);
}

TEST(CsvTest, EquiDepthIngestionBalancesBins) {
  // A heavy-tailed column: equi-width packs nearly everything into bin 0,
  // equi-depth spreads rows evenly.
  std::string csv = "x\n";
  Rng rng(9);
  for (int i = 0; i < 4000; ++i) {
    const double v = std::exp(rng.Gaussian(0.0, 1.5));  // log-normal
    csv += std::to_string(v) + "\n";
  }
  auto table = ParseCsv(csv);
  ASSERT_TRUE(table.ok());

  CsvColumnSpec width_spec{"x", 4, 1.0, /*equi_depth=*/false};
  CsvColumnSpec depth_spec{"x", 4, 1.0, /*equi_depth=*/true};
  auto width_ds = DatasetFromCsv(*table, {width_spec});
  auto depth_ds = DatasetFromCsv(*table, {depth_spec});
  ASSERT_TRUE(width_ds.ok());
  ASSERT_TRUE(depth_ds.ok());

  auto bin_counts = [](const Dataset& ds) {
    std::vector<int> counts(4, 0);
    for (Value v : ds.column(0)) counts[v]++;
    return counts;
  };
  const auto width_counts = bin_counts(*width_ds);
  const auto depth_counts = bin_counts(*depth_ds);
  // Equi-width: dominated by the first bin.
  EXPECT_GT(width_counts[0], 3500);
  // Equi-depth: each bin holds roughly a quarter.
  for (int c : depth_counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(CsvTest, LoadCsvFileNotFound) {
  EXPECT_EQ(LoadCsvFile("/nonexistent/path.csv").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace caqp
