// ExhaustivePlanner tests: the paper's Figure 2 motivating example, DP
// consistency (reported cost == Equation (3) cost of the returned plan),
// optimality against OptSeq and GreedyPlan, verdict correctness over the
// full domain, SPSF restriction behavior, and pruning/caching stats.

#include <gtest/gtest.h>

#include "opt/exhaustive.h"
#include "opt/greedyseq.h"
#include "plan/plan_cost.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

/// The paper's Figure 2 setup: temp and light predicates with marginal
/// selectivity 1/2 each, cost 1 each; a free "time" attribute such that at
/// night (time=0) the temp predicate passes with 1/10 and during day
/// (time=1) the light predicate passes with 1/10. Expected costs: any
/// sequential plan = 1.5; the conditional plan = 1.1.
struct Fig2Fixture {
  Schema schema;
  Dataset data{Schema()};
  Query query;

  Fig2Fixture() {
    schema.AddAttribute("time", 2, 0.0);  // free to observe
    schema.AddAttribute("temp", 2, 1.0);
    schema.AddAttribute("light", 2, 1.0);
    data = Dataset(schema);
    // 20 tuples, half night (time=0), half day (time=1).
    // Night: P(temp=1) = 1/10, P(light=1) = 9/10 (independent given time).
    // Day:   P(temp=1) = 9/10, P(light=1) = 1/10.
    // Overall selectivity of each predicate: 1/2.
    auto add = [&](Value time, Value temp, Value light, int copies) {
      for (int i = 0; i < copies; ++i) {
        data.Append({time, temp, light});
      }
    };
    // Night block (100 tuples scaled to counts of 100).
    add(0, 1, 1, 9);   // temp pass & light pass: 0.1*0.9 * 100 = 9
    add(0, 1, 0, 1);   // 0.1*0.1*100 = 1
    add(0, 0, 1, 81);  // 0.9*0.9
    add(0, 0, 0, 9);
    // Day block mirrored.
    add(1, 1, 1, 9);
    add(1, 0, 1, 1);
    add(1, 1, 0, 81);
    add(1, 0, 0, 9);
    query = Query::Conjunction(
        {Predicate(1, 1, 1), Predicate(2, 1, 1)});  // temp=1 AND light=1
  }
};

TEST(ExhaustiveTest, Figure2MotivatingExample) {
  Fig2Fixture fx;
  DatasetEstimator est(fx.data);
  PerAttributeCostModel cm(fx.schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(fx.schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  const Plan plan = planner.BuildPlan(fx.query);

  // The paper's sequential cost is 1.5; the conditional plan that branches
  // on time costs 1 + P(first predicate passes | branch) = 1.1.
  EXPECT_NEAR(planner.LastPlanCost(), 1.1, 1e-9);
  const EmpiricalCostResult emp =
      EmpiricalPlanCost(plan, fx.data, fx.query, cm);
  EXPECT_NEAR(emp.mean_cost, 1.1, 1e-9);
  EXPECT_EQ(emp.verdict_errors, 0u);
  // The plan conditions on the free time attribute at the root.
  ASSERT_EQ(plan.root().kind, PlanNode::Kind::kSplit);
  EXPECT_EQ(plan.root().attr, 0);
}

TEST(ExhaustiveTest, ReportedCostMatchesEquation3) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 300, 21);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  Rng rng(22);
  for (int iter = 0; iter < 8; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng, 2);
    const Plan plan = planner.BuildPlan(q);
    const double eq3 = ExpectedPlanCost(plan, est, cm);
    ASSERT_NEAR(planner.LastPlanCost(), eq3, 1e-9)
        << q.ToString(schema);
    // And equals the empirical training cost (Equation (4)).
    const EmpiricalCostResult emp = EmpiricalPlanCost(plan, ds, q, cm);
    ASSERT_NEAR(eq3, emp.mean_cost, 1e-9);
    ASSERT_EQ(emp.verdict_errors, 0u);
  }
}

TEST(ExhaustiveTest, VerdictsCorrectOverFullDomain) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 250, 23);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  Rng rng(24);
  for (int iter = 0; iter < 8; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng);
    const Plan plan = planner.BuildPlan(q);
    // Correct even on tuples never seen in training.
    EXPECT_EQ(testing_util::CountVerdictMismatches(plan, q, schema), 0u);
  }
}

TEST(ExhaustiveTest, NeverWorseThanOptSeqOnTraining) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 400, 25);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  OptSeqSolver optseq;
  SequentialPlanner seq(est, cm, optseq, "OptSeq");
  Rng rng(26);
  for (int iter = 0; iter < 8; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng);
    const Plan pe = planner.BuildPlan(q);
    const Plan ps = seq.BuildPlan(q);
    const double ce = EmpiricalPlanCost(pe, ds, q, cm).mean_cost;
    const double cs = EmpiricalPlanCost(ps, ds, q, cm).mean_cost;
    ASSERT_LE(ce, cs + 1e-9) << q.ToString(schema);
  }
}

TEST(ExhaustiveTest, SupportsDisjunctiveQueries) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 300, 27);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  Query q = Query::Disjunction(
      {{Predicate(2, 3, 3), Predicate(0, 0, 1)}, {Predicate(3, 0, 1)}});
  const Plan plan = planner.BuildPlan(q);
  EXPECT_EQ(testing_util::CountVerdictMismatches(plan, q, schema), 0u);
  const EmpiricalCostResult emp = EmpiricalPlanCost(plan, ds, q, cm);
  EXPECT_EQ(emp.verdict_errors, 0u);
}

TEST(ExhaustiveTest, RestrictedSpsfNeverBeatsUnrestricted) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 500, 28);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet all = SplitPointSet::AllPoints(schema);
  const SplitPointSet one = SplitPointSet::EquiSpaced(schema, {1, 1, 1, 1});
  Rng rng(29);
  for (int iter = 0; iter < 6; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng);
    ExhaustivePlanner::Options oa;
    oa.split_points = &all;
    ExhaustivePlanner pa(est, cm, oa);
    ExhaustivePlanner::Options ob;
    ob.split_points = &one;
    ExhaustivePlanner pb(est, cm, ob);
    const Plan plan_all = pa.BuildPlan(q);
    const Plan plan_one = pb.BuildPlan(q);
    ASSERT_LE(pa.LastPlanCost(), pb.LastPlanCost() + 1e-9);
    // Both remain correct.
    ASSERT_EQ(testing_util::CountVerdictMismatches(plan_one, q, schema), 0u);
  }
}

TEST(ExhaustiveTest, CacheIsExercised) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 300, 30);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  const Query q = Query::Conjunction({Predicate(2, 1, 2), Predicate(3, 1, 3)});
  (void)planner.BuildPlan(q);
  EXPECT_GT(planner.stats().subproblems_solved, 0u);
  EXPECT_GT(planner.stats().cache_hits, 0u);
  EXPECT_GT(planner.stats().candidates_tried, 0u);
}

TEST(ExhaustiveTest, TrivialQueryDeterminedAtRoot) {
  Schema schema;
  schema.AddAttribute("a", 4, 1.0);
  Dataset ds(schema);
  ds.Append({0});
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  // Predicate spans the whole domain: always true.
  const Plan plan = planner.BuildPlan(Query::Conjunction({Predicate(0, 0, 3)}));
  ASSERT_EQ(plan.root().kind, PlanNode::Kind::kVerdict);
  EXPECT_TRUE(plan.root().verdict);
  EXPECT_EQ(planner.LastPlanCost(), 0.0);
}

TEST(ExhaustiveTest, ExploitsSensorBoardSharing) {
  // Two expensive attributes share a board whose power-up dominates their
  // individual costs. The optimal plan under the board model evaluates them
  // back-to-back; the planner's expected cost must equal the board-model
  // Equation (3) cost and be no worse than the plan built against the flat
  // model, evaluated under the board model.
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 400, 31);
  DatasetEstimator est(ds);
  SensorBoardCostModel board_cm(schema, {-1, -1, 0, 0}, {70.0});
  PerAttributeCostModel flat_cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  const Query q =
      Query::Conjunction({Predicate(2, 1, 3), Predicate(3, 1, 3)});

  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner board_planner(est, board_cm, opts);
  ExhaustivePlanner flat_planner(est, flat_cm, opts);

  const Plan board_plan = board_planner.BuildPlan(q);
  const Plan flat_plan = flat_planner.BuildPlan(q);
  const double board_cost =
      EmpiricalPlanCost(board_plan, ds, q, board_cm).mean_cost;
  const double flat_under_board =
      EmpiricalPlanCost(flat_plan, ds, q, board_cm).mean_cost;
  EXPECT_LE(board_cost, flat_under_board + 1e-9);
  EXPECT_NEAR(board_planner.LastPlanCost(), board_cost, 1e-9);
  EXPECT_EQ(testing_util::CountVerdictMismatches(board_plan, q, schema), 0u);
}

// ---------------------------------------------------------------------
// Brute-force optimality: on binary domains, a split at 1 reveals the exact
// attribute value, so the optimal conditional plan equals the optimal
// *adaptive acquisition strategy*, computable by a small DP over partial
// assignments:
//   V(assigned) = 0 if the query is determined,
//   V(assigned) = min over unobserved a of C_a + sum_v P(v|assigned) V(...).
// ExhaustivePlanner with AllPoints must match this value exactly.

double BruteForceAdaptiveCost(const Dataset& ds, const Query& q,
                              const RangeVec& ranges,
                              const std::vector<RowId>& rows) {
  if (q.EvaluateOnRanges(ranges) != Truth::kUnknown) return 0.0;
  const Schema& schema = ds.schema();
  double best = std::numeric_limits<double>::infinity();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const AttrId attr = static_cast<AttrId>(a);
    if (ranges[attr].Width() <= 1) continue;  // already observed
    double cost = schema.cost(attr);
    for (Value v = 0; v < schema.domain_size(attr); ++v) {
      std::vector<RowId> sub;
      for (RowId r : rows) {
        if (ds.at(r, attr) == v) sub.push_back(r);
      }
      if (sub.empty()) continue;
      const double p = static_cast<double>(sub.size()) / rows.size();
      cost += p * BruteForceAdaptiveCost(
                      ds, q, Refined(ranges, attr, ValueRange{v, v}), sub);
    }
    best = std::min(best, cost);
  }
  // If every attribute is observed the query must be determined, so `best`
  // is finite whenever we get here.
  return best;
}

class ExhaustiveBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveBruteForceTest, MatchesOptimalAdaptiveStrategy) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  // 4 binary attributes with random costs and a correlated distribution.
  Schema schema;
  for (int a = 0; a < 4; ++a) {
    schema.AddAttribute("b" + std::to_string(a), 2,
                        std::floor(rng.Uniform(1.0, 50.0)));
  }
  Dataset ds(schema);
  for (int i = 0; i < 300; ++i) {
    const bool base = rng.Bernoulli(0.5);
    Tuple t(4);
    for (int a = 0; a < 4; ++a) {
      t[a] = static_cast<Value>(rng.Bernoulli(0.3) ? !base : base);
    }
    ds.Append(t);
  }
  // Random conjunctive query over 2 attributes.
  Query q = Query::Conjunction(
      {Predicate(0, 1, 1), Predicate(2, rng.Bernoulli(0.5) ? 1 : 0,
                                     rng.Bernoulli(0.5) ? 1 : 1)});
  if (!q.ValidFor(schema)) return;

  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  const Plan plan = planner.BuildPlan(q);

  std::vector<RowId> all_rows(ds.num_rows());
  std::iota(all_rows.begin(), all_rows.end(), RowId{0});
  const double brute =
      BruteForceAdaptiveCost(ds, q, schema.FullRanges(), all_rows);
  EXPECT_NEAR(planner.LastPlanCost(), brute, 1e-9);
  EXPECT_EQ(testing_util::CountVerdictMismatches(plan, q, schema), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveBruteForceTest,
                         ::testing::Range(1, 13));

TEST(SplitPointSetTest, AllPointsCoversDomains) {
  const Schema schema = SmallSchema();
  const SplitPointSet s = SplitPointSet::AllPoints(schema);
  EXPECT_EQ(s.PointsFor(0).size(), 3u);  // K=4
  EXPECT_EQ(s.PointsFor(1).size(), 5u);  // K=6
  EXPECT_EQ(s.PointsFor(0).front(), 1);
  EXPECT_EQ(s.PointsFor(0).back(), 3);
}

TEST(SplitPointSetTest, EquiSpacedRespectsCounts) {
  Schema schema;
  schema.AddAttribute("a", 16, 1.0);
  const SplitPointSet s = SplitPointSet::EquiSpaced(schema, {3});
  ASSERT_EQ(s.PointsFor(0).size(), 3u);
  EXPECT_EQ(s.PointsFor(0)[0], 4);
  EXPECT_EQ(s.PointsFor(0)[1], 8);
  EXPECT_EQ(s.PointsFor(0)[2], 12);
}

TEST(SplitPointSetTest, EquiSpacedClampsToDomain) {
  Schema schema;
  schema.AddAttribute("a", 4, 1.0);
  const SplitPointSet s = SplitPointSet::EquiSpaced(schema, {100});
  EXPECT_EQ(s.PointsFor(0).size(), 3u);  // K-1 max
}

TEST(SplitPointSetTest, FromLog10SpsfDistributesBudget) {
  Schema schema;
  schema.AddAttribute("a", 64, 1.0);
  schema.AddAttribute("b", 64, 1.0);
  // SPSF = 10^2 over two attributes: ~10 points each.
  const SplitPointSet s = SplitPointSet::FromLog10Spsf(schema, 2.0);
  EXPECT_EQ(s.PointsFor(0).size(), 10u);
  EXPECT_EQ(s.PointsFor(1).size(), 10u);
  EXPECT_NEAR(s.Log10Spsf(), 2.0, 0.1);
}

}  // namespace
}  // namespace caqp
