// Tests for the subproblem bookkeeping helpers (prob/subproblem.h) and the
// planner cost callback (MakeSeqCostFn).

#include <gtest/gtest.h>

#include "opt/planner.h"
#include "prob/subproblem.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::SmallSchema;

TEST(SubproblemTest, AcquiredAttrsTracksNarrowedRanges) {
  const Schema schema = SmallSchema();
  RangeVec ranges = schema.FullRanges();
  EXPECT_EQ(AcquiredAttrs(schema, ranges).Count(), 0);
  ranges[1] = ValueRange{2, 5};
  ranges[3] = ValueRange{0, 0};
  const AttrSet acquired = AcquiredAttrs(schema, ranges);
  EXPECT_EQ(acquired.Count(), 2);
  EXPECT_TRUE(acquired.Contains(1));
  EXPECT_TRUE(acquired.Contains(3));
  EXPECT_FALSE(acquired.Contains(0));
}

TEST(SubproblemTest, FullRangeDetection) {
  const Schema schema = SmallSchema();
  RangeVec ranges = schema.FullRanges();
  EXPECT_TRUE(IsFullRange(schema, ranges, 0));
  ranges[0] = ValueRange{0, 2};  // domain is 4: [0,2] is narrowed
  EXPECT_FALSE(IsFullRange(schema, ranges, 0));
}

TEST(SubproblemTest, RefinedReplacesOneRange) {
  const Schema schema = SmallSchema();
  const RangeVec base = schema.FullRanges();
  const RangeVec refined = Refined(base, 2, ValueRange{1, 2});
  EXPECT_EQ(refined[2], (ValueRange{1, 2}));
  EXPECT_EQ(refined[0], base[0]);
  EXPECT_EQ(refined[1], base[1]);
  EXPECT_EQ(refined[3], base[3]);
}

TEST(SubproblemTest, UndeterminedPredicatesFiltersDecided) {
  const Schema schema = SmallSchema();
  const Conjunct conj = {Predicate(0, 1, 2), Predicate(1, 0, 4),
                         Predicate(2, 3, 3)};
  RangeVec ranges = schema.FullRanges();
  ranges[0] = ValueRange{1, 2};  // pred 0 determined true
  ranges[2] = ValueRange{0, 1};  // pred 2 determined false
  const auto undet = UndeterminedPredicates(conj, ranges);
  ASSERT_EQ(undet.size(), 1u);
  EXPECT_EQ(undet[0].attr, 1);
}

TEST(SubproblemTest, RangeVectorHashDistinguishes) {
  const Schema schema = SmallSchema();
  RangeVectorHash hash;
  const RangeVec a = schema.FullRanges();
  RangeVec b = a;
  b[1] = ValueRange{0, 4};
  EXPECT_NE(hash(a), hash(b));
  EXPECT_EQ(hash(a), hash(schema.FullRanges()));
}

TEST(MakeSeqCostFnTest, ChargesOnlyUnacquiredAttributes) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  RangeVec ranges = schema.FullRanges();
  ranges[2] = ValueRange{1, 3};  // attr 2 already acquired on the path
  const std::vector<Predicate> preds = {Predicate(2, 2, 3),
                                        Predicate(3, 1, 2),
                                        Predicate(0, 0, 1)};
  auto cost = MakeSeqCostFn(schema, cm, ranges, preds);
  EXPECT_DOUBLE_EQ(cost(0, 0), 0.0);              // attr 2: path-acquired
  EXPECT_DOUBLE_EQ(cost(1, 0), schema.cost(3));   // fresh
  EXPECT_DOUBLE_EQ(cost(2, 0), schema.cost(0));   // fresh
}

TEST(MakeSeqCostFnTest, EvaluatedPredicatesMakeLaterOnesFree) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  const RangeVec ranges = schema.FullRanges();
  // Two predicates over the same attribute cannot occur in one conjunct,
  // but evaluated-set accounting also matters for board models; with the
  // flat model, evaluating pred 0 (attr 3) makes a hypothetical second
  // predicate on attr 3 free.
  const std::vector<Predicate> preds = {Predicate(3, 0, 1),
                                        Predicate(3, 2, 4)};
  auto cost = MakeSeqCostFn(schema, cm, ranges, preds);
  EXPECT_DOUBLE_EQ(cost(1, 0b0), schema.cost(3));
  EXPECT_DOUBLE_EQ(cost(1, 0b1), 0.0);  // attr acquired by pred 0
}

TEST(MakeSeqCostFnTest, BoardModelSeesEvaluatedSet) {
  const Schema schema = SmallSchema();
  SensorBoardCostModel cm(schema, {-1, -1, 0, 0}, {30.0});
  const RangeVec ranges = schema.FullRanges();
  const std::vector<Predicate> preds = {Predicate(2, 1, 2),
                                        Predicate(3, 1, 2)};
  auto cost = MakeSeqCostFn(schema, cm, ranges, preds);
  // First board attribute pays power-up; the second does not.
  EXPECT_DOUBLE_EQ(cost(0, 0b0), schema.cost(2) + 30.0);
  EXPECT_DOUBLE_EQ(cost(1, 0b1), schema.cost(3));
}

}  // namespace
}  // namespace caqp
