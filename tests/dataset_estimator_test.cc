// DatasetEstimator tests: every statistic must agree exactly with brute-
// force counting over the dataset (the estimator is the paper's Section 5
// machinery, so its correctness underpins every planner).

#include <gtest/gtest.h>

#include <algorithm>

#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::BruteForceRows;
using testing_util::CorrelatedDataset;
using testing_util::RandomRanges;
using testing_util::SmallSchema;

TEST(DatasetEstimatorTest, RootMarginalMatchesColumnCounts) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 500, 1);
  DatasetEstimator est(ds);
  const RangeVec root = ds.schema().FullRanges();
  for (size_t a = 0; a < ds.num_attributes(); ++a) {
    const Histogram h = est.Marginal(root, static_cast<AttrId>(a));
    EXPECT_DOUBLE_EQ(h.total(), 500.0);
    std::vector<double> counts(ds.schema().domain_size(static_cast<AttrId>(a)),
                               0);
    for (Value v : ds.column(static_cast<AttrId>(a))) counts[v] += 1;
    for (Value v = 0; v < counts.size(); ++v) {
      EXPECT_DOUBLE_EQ(h.Count(v), counts[v]);
    }
  }
}

TEST(DatasetEstimatorTest, ConditionalMarginalMatchesBruteForce) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 800, 2);
  DatasetEstimator est(ds);
  Rng rng(3);
  for (int iter = 0; iter < 50; ++iter) {
    const RangeVec ranges = RandomRanges(ds.schema(), rng);
    const std::vector<RowId> expected = BruteForceRows(ds, ranges);
    for (size_t a = 0; a < ds.num_attributes(); ++a) {
      const Histogram h = est.Marginal(ranges, static_cast<AttrId>(a));
      EXPECT_DOUBLE_EQ(h.total(), static_cast<double>(expected.size()));
      std::vector<double> counts(
          ds.schema().domain_size(static_cast<AttrId>(a)), 0);
      for (RowId r : expected) counts[ds.at(r, static_cast<AttrId>(a))] += 1;
      for (Value v = 0; v < counts.size(); ++v) {
        ASSERT_DOUBLE_EQ(h.Count(v), counts[v]);
      }
    }
  }
}

TEST(DatasetEstimatorTest, ReachProbabilityMatchesBruteForce) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 600, 4);
  DatasetEstimator est(ds);
  Rng rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    const RangeVec ranges = RandomRanges(ds.schema(), rng);
    const double expected =
        static_cast<double>(BruteForceRows(ds, ranges).size()) / 600.0;
    EXPECT_DOUBLE_EQ(est.ReachProbability(ranges), expected);
  }
}

TEST(DatasetEstimatorTest, PredicateMasksMatchBruteForce) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 700, 6);
  DatasetEstimator est(ds);
  Rng rng(7);
  std::vector<Predicate> preds = {Predicate(2, 1, 2), Predicate(3, 0, 2),
                                  Predicate(1, 2, 4, /*neg=*/true)};
  for (int iter = 0; iter < 30; ++iter) {
    const RangeVec ranges = RandomRanges(ds.schema(), rng);
    const MaskDistribution dist = est.PredicateMasks(ranges, preds);
    const std::vector<RowId> rows = BruteForceRows(ds, ranges);
    EXPECT_DOUBLE_EQ(dist.total(), static_cast<double>(rows.size()));
    // Brute-force mask counts.
    std::vector<double> expected(8, 0);
    for (RowId r : rows) {
      expected[PredicateMask(preds, ds.GetTuple(r))] += 1;
    }
    for (uint64_t mask = 0; mask < 8; ++mask) {
      double got = 0;
      for (const auto& [m, w] : dist.entries()) {
        if (m == mask) got += w;
      }
      ASSERT_DOUBLE_EQ(got, expected[mask]) << "mask " << mask;
    }
  }
}

TEST(DatasetEstimatorTest, PerValueMasksPartitionParent) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 900, 8);
  DatasetEstimator est(ds);
  Rng rng(9);
  std::vector<Predicate> preds = {Predicate(2, 1, 2), Predicate(3, 1, 3)};
  for (int iter = 0; iter < 30; ++iter) {
    const RangeVec ranges = RandomRanges(ds.schema(), rng);
    for (size_t a = 0; a < ds.num_attributes(); ++a) {
      const AttrId attr = static_cast<AttrId>(a);
      const auto per_value = est.PerValuePredicateMasks(ranges, attr, preds);
      ASSERT_EQ(per_value.size(), ranges[attr].Width());
      const MaskDistribution parent = est.PredicateMasks(ranges, preds);
      double total = 0;
      for (const auto& d : per_value) total += d.total();
      EXPECT_DOUBLE_EQ(total, parent.total());
      // Summing per-value distributions over the whole range recovers the
      // parent's subset masses exactly.
      for (uint64_t mask = 0; mask < 4; ++mask) {
        double sum = 0;
        for (const auto& d : per_value) sum += d.MassAllTrue(mask);
        EXPECT_NEAR(sum, parent.MassAllTrue(mask), 1e-9);
      }
      // Check per-value contents directly against brute force.
      const std::vector<RowId> rows = BruteForceRows(ds, ranges);
      for (Value v = ranges[attr].lo; v <= ranges[attr].hi; ++v) {
        double expected = 0;
        for (RowId r : rows) {
          if (ds.at(r, attr) == v) expected += 1;
        }
        EXPECT_DOUBLE_EQ(per_value[v - ranges[attr].lo].total(), expected);
      }
    }
  }
}

TEST(DatasetEstimatorTest, ScopeStackSpeedsEqualAnswers) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 500, 10);
  DatasetEstimator est(ds);
  const Schema& schema = ds.schema();
  RangeVec outer = schema.FullRanges();
  outer[0] = ValueRange{1, 2};
  RangeVec inner = outer;
  inner[2] = ValueRange{0, 1};

  // Without scopes.
  const double p_no_scope = est.ReachProbability(inner);

  // With a scope stack mirroring planner recursion.
  est.PushScope(outer);
  est.PushScope(inner);
  const double p_scoped = est.ReachProbability(inner);
  est.PopScope();
  const double p_outer = est.ReachProbability(outer);
  est.PopScope();

  EXPECT_DOUBLE_EQ(p_no_scope, p_scoped);
  EXPECT_DOUBLE_EQ(
      p_outer, static_cast<double>(BruteForceRows(ds, outer).size()) / 500.0);
}

TEST(DatasetEstimatorTest, OffStackQueriesResolveFromNearestScope) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 400, 11);
  DatasetEstimator est(ds);
  RangeVec scope = ds.schema().FullRanges();
  scope[1] = ValueRange{1, 4};
  est.PushScope(scope);
  // Query a sibling refinement not on the stack.
  RangeVec probe = scope;
  probe[3] = ValueRange{2, 3};
  EXPECT_DOUBLE_EQ(
      est.ReachProbability(probe),
      static_cast<double>(BruteForceRows(ds, probe).size()) / 400.0);
  est.PopScope();
}

TEST(DatasetEstimatorTest, RangeProbabilityConvenience) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 300, 12);
  DatasetEstimator est(ds);
  const RangeVec root = ds.schema().FullRanges();
  double total = 0;
  for (Value v = 0; v < 4; ++v) {
    total += est.RangeProbability(root, 0, ValueRange{v, v});
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(DatasetEstimatorTest, PredicateProbabilityHandlesNegation) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 300, 13);
  DatasetEstimator est(ds);
  const RangeVec root = ds.schema().FullRanges();
  const Predicate p(1, 2, 4);
  const Predicate np(1, 2, 4, /*neg=*/true);
  EXPECT_NEAR(est.PredicateProbability(root, p) +
                  est.PredicateProbability(root, np),
              1.0, 1e-12);
}

TEST(DatasetEstimatorTest, EmptyDatasetIsSafe) {
  Dataset ds(SmallSchema());
  DatasetEstimator est(ds);
  const RangeVec root = ds.schema().FullRanges();
  EXPECT_DOUBLE_EQ(est.ReachProbability(root), 0.0);
  EXPECT_DOUBLE_EQ(est.Marginal(root, 0).total(), 0.0);
  EXPECT_TRUE(est.PredicateMasks(root, {Predicate(0, 0, 1)}).empty());
}

TEST(DatasetEstimatorTest, RowsMatchingExactAndSubset) {
  const Dataset ds = CorrelatedDataset(SmallSchema(), 200, 14);
  DatasetEstimator est(ds);
  Rng rng(15);
  for (int iter = 0; iter < 20; ++iter) {
    const RangeVec ranges = RandomRanges(ds.schema(), rng);
    EXPECT_EQ(est.RowsMatching(ranges), BruteForceRows(ds, ranges));
  }
}

}  // namespace
}  // namespace caqp
