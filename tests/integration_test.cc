// Cross-module integration properties, swept over random seeds:
//
//  * Every planner's plan decides every query correctly on every tuple of
//    the full domain (plans never err -- the paper's correctness guarantee).
//  * The training-data dominance chain holds:
//      Exhaustive <= Heuristic-10 <= Heuristic-1 <= Heuristic-0
//                 == CorrSeq <= Naive  (CorrSeq = OptSeq base).
//  * Estimator plug-compatibility: planners run against DatasetEstimator,
//    IndependentEstimator and ChowLiuEstimator without error, and the
//    Chow-Liu-planned plans remain correct.
//  * Train/test generalization on the synthetic generator: Heuristic beats
//    Naive in aggregate on held-out data.

#include <gtest/gtest.h>

#include "data/synthetic_gen.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "plan/plan_cost.h"
#include "prob/chow_liu.h"
#include "prob/dataset_estimator.h"
#include "prob/independent_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

class PlannerSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PlannerSweepTest, AllPlannersCorrectAndOrdered) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 500, seed * 101 + 7, 0.25);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;

  NaivePlanner naive(est, cm);
  SequentialPlanner corrseq(est, cm, optseq, "CorrSeq");
  auto greedy = [&](size_t k) {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &optseq;
    opts.max_splits = k;
    return GreedyPlanner(est, cm, opts);
  };
  ExhaustivePlanner::Options eopts;
  eopts.split_points = &splits;
  ExhaustivePlanner exhaustive(est, cm, eopts);

  Rng rng(seed * 13 + 1);
  for (int iter = 0; iter < 4; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng, 3);

    GreedyPlanner h0 = greedy(0), h1 = greedy(1), h10 = greedy(10);
    const Plan p_naive = naive.BuildPlan(q);
    const Plan p_corr = corrseq.BuildPlan(q);
    const Plan p_h0 = h0.BuildPlan(q);
    const Plan p_h1 = h1.BuildPlan(q);
    const Plan p_h10 = h10.BuildPlan(q);
    const Plan p_ex = exhaustive.BuildPlan(q);

    const Plan* plans[] = {&p_naive, &p_corr, &p_h0, &p_h1, &p_h10, &p_ex};
    for (const Plan* p : plans) {
      ASSERT_EQ(testing_util::CountVerdictMismatches(*p, q, schema), 0u)
          << q.ToString(schema);
    }

    const double c_naive = EmpiricalPlanCost(p_naive, ds, q, cm).mean_cost;
    const double c_corr = EmpiricalPlanCost(p_corr, ds, q, cm).mean_cost;
    const double c_h0 = EmpiricalPlanCost(p_h0, ds, q, cm).mean_cost;
    const double c_h1 = EmpiricalPlanCost(p_h1, ds, q, cm).mean_cost;
    const double c_h10 = EmpiricalPlanCost(p_h10, ds, q, cm).mean_cost;
    const double c_ex = EmpiricalPlanCost(p_ex, ds, q, cm).mean_cost;

    ASSERT_LE(c_corr, c_naive + 1e-9);
    ASSERT_NEAR(c_h0, c_corr, 1e-9);
    ASSERT_LE(c_h1, c_h0 + 1e-9);
    ASSERT_LE(c_h10, c_h1 + 1e-9);
    ASSERT_LE(c_ex, c_h10 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerSweepTest, ::testing::Range(1, 9));

class EstimatorPlugTest : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorPlugTest, PlannersRunOnEveryEstimator) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 800, seed * 37 + 3, 0.2);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  Rng rng(seed);
  const Query q = testing_util::RandomConjunctiveQuery(schema, rng, 2);

  DatasetEstimator direct(ds);
  IndependentEstimator indep(ds);
  ChowLiuEstimator::Options cl_opts;
  cl_opts.sample_count = 2048;
  ChowLiuEstimator chowliu(ds, cl_opts);

  CondProbEstimator* estimators[] = {&direct, &indep, &chowliu};
  for (CondProbEstimator* est : estimators) {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &optseq;
    opts.max_splits = 3;
    GreedyPlanner planner(*est, cm, opts);
    const Plan plan = planner.BuildPlan(q);
    ASSERT_EQ(testing_util::CountVerdictMismatches(plan, q, schema), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorPlugTest, ::testing::Range(1, 7));

TEST(IntegrationTest, HeuristicGeneralizesOnSyntheticHoldout) {
  SyntheticDataOptions opts;
  opts.n = 10;
  opts.gamma = 4;  // groups of 5: strong exploitable structure
  opts.sel = 0.6;
  opts.tuples = 24000;
  const Dataset all = GenerateSyntheticData(opts);
  const auto [train, test] = all.SplitFraction(0.5);
  const Query q = SyntheticAllExpensiveQuery(all.schema());

  DatasetEstimator est(train);
  PerAttributeCostModel cm(all.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(all.schema());
  GreedySeqSolver greedyseq;

  NaivePlanner naive(est, cm);
  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &greedyseq;
  gopts.max_splits = 5;
  GreedyPlanner heuristic(est, cm, gopts);

  const Plan p_naive = naive.BuildPlan(q);
  const Plan p_h = heuristic.BuildPlan(q);
  const auto r_naive = EmpiricalPlanCost(p_naive, test, q, cm);
  const auto r_h = EmpiricalPlanCost(p_h, test, q, cm);
  EXPECT_EQ(r_naive.verdict_errors, 0u);
  EXPECT_EQ(r_h.verdict_errors, 0u);
  // Held-out win: conditioning on the cheap group witnesses should save
  // a substantial fraction of acquisition cost.
  EXPECT_LT(r_h.mean_cost, r_naive.mean_cost * 0.9);
}

TEST(IntegrationTest, ChowLiuHelpsWhenTrainingDataIsTiny) {
  // With very little training data, direct counting overfits while the
  // smoothed tree model keeps plans sane. We check both produce correct
  // plans and that Chow-Liu's plan cost on a large test set is competitive.
  SyntheticDataOptions opts;
  opts.n = 8;
  opts.gamma = 3;
  opts.sel = 0.5;
  opts.tuples = 20200;
  const Dataset all = GenerateSyntheticData(opts);
  const auto [train_full, test] = all.SplitFraction(0.01);  // 202 rows train
  const Query q = SyntheticAllExpensiveQuery(all.schema());
  PerAttributeCostModel cm(all.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(all.schema());
  GreedySeqSolver greedyseq;

  DatasetEstimator direct(train_full);
  ChowLiuEstimator::Options cl;
  cl.sample_count = 4096;
  ChowLiuEstimator smooth(train_full, cl);

  auto build = [&](CondProbEstimator& est) {
    GreedyPlanner::Options gopts;
    gopts.split_points = &splits;
    gopts.seq_solver = &greedyseq;
    gopts.max_splits = 5;
    GreedyPlanner planner(est, cm, gopts);
    return planner.BuildPlan(q);
  };
  const Plan p_direct = build(direct);
  const Plan p_smooth = build(smooth);
  const auto r_direct = EmpiricalPlanCost(p_direct, test, q, cm);
  const auto r_smooth = EmpiricalPlanCost(p_smooth, test, q, cm);
  EXPECT_EQ(r_direct.verdict_errors, 0u);
  EXPECT_EQ(r_smooth.verdict_errors, 0u);
  // The smoothed model should not be dramatically worse; typically better.
  EXPECT_LT(r_smooth.mean_cost, r_direct.mean_cost * 1.25);
}

TEST(IntegrationTest, BoardCostModelChangesPlans) {
  // When two expensive attributes share a power-hungry board, evaluating
  // them back-to-back is cheaper than interleaving: planner costs under the
  // board model must be <= the same plan costed naively per-attribute plus
  // power-ups.
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 800, 99, 0.3);
  DatasetEstimator est(ds);
  SensorBoardCostModel board_cm(schema, {-1, -1, 0, 0}, {60.0});
  PerAttributeCostModel flat_cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  const Query q =
      Query::Conjunction({Predicate(2, 2, 3), Predicate(3, 0, 2)});

  SequentialPlanner board_aware(est, board_cm, optseq, "board");
  const Plan p = board_aware.BuildPlan(q);
  const auto under_board = EmpiricalPlanCost(p, ds, q, board_cm);
  const auto under_flat = EmpiricalPlanCost(p, ds, q, flat_cm);
  // Board charges at least the flat cost.
  EXPECT_GE(under_board.mean_cost, under_flat.mean_cost);
  EXPECT_EQ(under_board.verdict_errors, 0u);
}

class DnfSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DnfSweepTest, ExhaustiveCorrectOnRandomDisjunctions) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  // Small schema so full-domain verification stays cheap.
  Schema schema;
  schema.AddAttribute("a", 3, 1.0);
  schema.AddAttribute("b", 4, 20.0);
  schema.AddAttribute("c", 3, 40.0);
  const Dataset ds = testing_util::CorrelatedDataset(schema, 400,
                                                     GetParam() * 31 + 5);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);

  for (int iter = 0; iter < 5; ++iter) {
    // 2-3 random conjuncts of 1-2 predicates each.
    std::vector<Conjunct> conjuncts;
    const int nconj = 2 + static_cast<int>(rng.UniformInt(0, 1));
    for (int ci = 0; ci < nconj; ++ci) {
      Conjunct c;
      std::vector<AttrId> attrs = {0, 1, 2};
      std::swap(attrs[0],
                attrs[static_cast<size_t>(rng.UniformInt(0, 2))]);
      const int npred = 1 + static_cast<int>(rng.UniformInt(0, 1));
      for (int pi = 0; pi < npred; ++pi) {
        const AttrId a = attrs[pi];
        const uint32_t k = schema.domain_size(a);
        Value lo = static_cast<Value>(rng.UniformInt(0, k - 1));
        Value hi = static_cast<Value>(rng.UniformInt(lo, k - 1));
        if (lo == 0 && hi == k - 1) hi = static_cast<Value>(k - 2);
        c.emplace_back(a, lo, hi, rng.Bernoulli(0.25));
      }
      conjuncts.push_back(std::move(c));
    }
    const Query q = Query::Disjunction(conjuncts);
    if (!q.ValidFor(schema)) continue;
    const Plan plan = planner.BuildPlan(q);
    ASSERT_EQ(testing_util::CountVerdictMismatches(plan, q, schema), 0u)
        << q.ToString(schema);
    // The DP's reported cost is consistent with Equation (3).
    ASSERT_NEAR(planner.LastPlanCost(), ExpectedPlanCost(plan, est, cm),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfSweepTest, ::testing::Range(1, 9));

TEST(IntegrationTest, ExhaustiveHandlesExistentialNetworkQuery) {
  // Section 7 existential query over a small "network": does any mote see
  // (high A and high B)? DNF over per-mote conjuncts.
  Schema schema;
  schema.AddAttribute("hour", 4, 1.0);
  schema.AddAttribute("a0", 2, 30.0);
  schema.AddAttribute("b0", 2, 30.0);
  schema.AddAttribute("a1", 2, 30.0);
  schema.AddAttribute("b1", 2, 30.0);
  Rng rng(5);
  Dataset ds(schema);
  for (int i = 0; i < 1500; ++i) {
    const auto hour = static_cast<Value>(rng.UniformInt(0, 3));
    const double p = hour >= 2 ? 0.7 : 0.1;  // busy in the "afternoon"
    ds.Append({hour, static_cast<Value>(rng.Bernoulli(p)),
               static_cast<Value>(rng.Bernoulli(p)),
               static_cast<Value>(rng.Bernoulli(p)),
               static_cast<Value>(rng.Bernoulli(p))});
  }
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(est, cm, opts);
  Query q = Query::Disjunction({{Predicate(1, 1, 1), Predicate(2, 1, 1)},
                                {Predicate(3, 1, 1), Predicate(4, 1, 1)}});
  const Plan plan = planner.BuildPlan(q);
  EXPECT_EQ(testing_util::CountVerdictMismatches(plan, q, schema), 0u);
  const auto res = EmpiricalPlanCost(plan, ds, q, cm);
  EXPECT_EQ(res.verdict_errors, 0u);
  EXPECT_GT(res.mean_cost, 0.0);
}

}  // namespace
}  // namespace caqp
