// Executor and cost model tests: lazy acquisition, single-charge semantics,
// acquisition ordering, and the sensor-board cost model.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::SmallSchema;

/// Source that records the order in which attributes are acquired.
class RecordingSource : public AcquisitionSource {
 public:
  explicit RecordingSource(const Tuple& t) : tuple_(t) {}
  AcquiredValue Acquire(AttrId attr) override {
    order_.push_back(attr);
    return tuple_[attr];
  }
  const std::vector<AttrId>& order() const { return order_; }

 private:
  Tuple tuple_;
  std::vector<AttrId> order_;
};

TEST(ExecutorTest, SequentialLeafAcquiresInOrderAndShortCircuits) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential(
      {Predicate(1, 0, 2), Predicate(3, 4, 4), Predicate(2, 0, 0)}));
  // Tuple fails the second predicate: third never acquired.
  Tuple t = {0, 1, 3, 0};
  RecordingSource src(t);
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_FALSE(res.verdict);
  EXPECT_EQ(src.order(), (std::vector<AttrId>{1, 3}));
  EXPECT_DOUBLE_EQ(res.cost, schema.cost(1) + schema.cost(3));
  EXPECT_EQ(res.acquisitions, 2);
  EXPECT_TRUE(res.acquired.Contains(1));
  EXPECT_TRUE(res.acquired.Contains(3));
  EXPECT_FALSE(res.acquired.Contains(2));
}

TEST(ExecutorTest, SplitPathChargesOncePerAttribute) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  // Split twice on attr 0 then test a predicate on attr 0: one charge.
  auto leaf = PlanNode::Sequential({Predicate(0, 2, 2)});
  auto inner = PlanNode::Split(0, 3, std::move(leaf), PlanNode::Verdict(false));
  auto root = PlanNode::Split(0, 1, PlanNode::Verdict(false), std::move(inner));
  Plan plan(std::move(root));
  Tuple t = {2, 0, 0, 0};
  RecordingSource src(t);
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_TRUE(res.verdict);
  EXPECT_EQ(res.acquisitions, 1);
  EXPECT_DOUBLE_EQ(res.cost, schema.cost(0));
  EXPECT_EQ(src.order().size(), 1u);  // source consulted exactly once
}

TEST(ExecutorTest, VerdictLeafAcquiresNothing) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Verdict(true));
  Tuple t = {0, 0, 0, 0};
  RecordingSource src(t);
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_TRUE(res.verdict);
  EXPECT_EQ(res.acquisitions, 0);
  EXPECT_DOUBLE_EQ(res.cost, 0.0);
}

TEST(ExecutorTest, GenericLeafStopsWhenResolved) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Query q = Query::Disjunction({{Predicate(0, 3, 3)}, {Predicate(3, 0, 0)}});
  Plan plan(PlanNode::Generic(q, {0, 3}));
  // attr0 == 3 resolves the query; attr3 must not be acquired.
  Tuple t = {3, 0, 0, 4};
  RecordingSource src(t);
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_TRUE(res.verdict);
  EXPECT_EQ(src.order(), (std::vector<AttrId>{0}));
}

TEST(ExecutorTest, GenericLeafReusesSplitPathValues) {
  // A split acquires attr 0; the generic leaf references it and must reuse
  // the acquired value instead of paying again.
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Query q = Query::Disjunction({{Predicate(0, 3, 3)}, {Predicate(3, 4, 4)}});
  auto leaf = PlanNode::Generic(q, {0, 3});
  auto root =
      PlanNode::Split(0, 2, PlanNode::Verdict(false), std::move(leaf));
  Plan plan(std::move(root));
  // attr0 == 3: the split sends us to the leaf, where the first disjunct is
  // already satisfied by the split-path value. attr3 never acquired.
  Tuple t = {3, 0, 0, 0};
  RecordingSource src(t);
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_TRUE(res.verdict);
  EXPECT_EQ(src.order(), (std::vector<AttrId>{0}));
  EXPECT_DOUBLE_EQ(res.cost, schema.cost(0));
}

TEST(ExecutorTest, TupleSourceReadsValues) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  Plan plan(PlanNode::Sequential({Predicate(2, 1, 3)}));
  Tuple t = {0, 0, 2, 0};
  TupleSource src(t);
  EXPECT_TRUE(ExecutePlan(plan, schema, cm, src).verdict);
  Tuple t2 = {0, 0, 0, 0};
  TupleSource src2(t2);
  EXPECT_FALSE(ExecutePlan(plan, schema, cm, src2).verdict);
}

TEST(SensorBoardCostModelTest, PowerUpChargedOncePerBoard) {
  const Schema schema = SmallSchema();
  // Attrs 2 and 3 share board 0 (power-up 40); attr 1 on board 1 (power 5).
  SensorBoardCostModel cm(schema, {-1, 1, 0, 0}, {40.0, 5.0});
  AttrSet none;
  EXPECT_DOUBLE_EQ(cm.Cost(0, none), schema.cost(0));        // no board
  EXPECT_DOUBLE_EQ(cm.Cost(2, none), schema.cost(2) + 40.0); // powers board
  AttrSet with2;
  with2.Insert(2);
  EXPECT_DOUBLE_EQ(cm.Cost(3, with2), schema.cost(3));  // board already hot
  EXPECT_DOUBLE_EQ(cm.Cost(1, with2), schema.cost(1) + 5.0);
}

TEST(SensorBoardCostModelTest, ExecutorIntegration) {
  const Schema schema = SmallSchema();
  SensorBoardCostModel cm(schema, {-1, -1, 0, 0}, {40.0});
  // Sequential plan touching both board attrs: power-up charged once.
  Plan plan(PlanNode::Sequential({Predicate(2, 0, 3), Predicate(3, 0, 4)}));
  Tuple t = {0, 0, 1, 1};
  TupleSource src(t);
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src);
  EXPECT_DOUBLE_EQ(res.cost, schema.cost(2) + 40.0 + schema.cost(3));
}

TEST(AttrSetTest, BasicOperations) {
  AttrSet s;
  EXPECT_EQ(s.Count(), 0);
  s.Insert(5);
  s.Insert(63);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(63));
  EXPECT_FALSE(s.Contains(6));
  EXPECT_EQ(s.Count(), 2);
  s.Remove(5);
  EXPECT_FALSE(s.Contains(5));
  AttrSet o;
  o.Insert(1);
  EXPECT_EQ(s.Union(o).Count(), 2);
}

TEST(MetricsTest, GainSummary) {
  const GainStats s = SummarizeGains({2.0, 1.0, 4.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

TEST(MetricsTest, EmptyGains) {
  const GainStats s = SummarizeGains({});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(MetricsTest, CumulativeGainCurveMonotone) {
  auto curve = CumulativeGainCurve({1.0, 1.5, 2.0, 2.5, 3.0}, 10);
  ASSERT_EQ(curve.size(), 10u);
  EXPECT_DOUBLE_EQ(curve.front().second, 1.0);  // all gains >= min
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].second, curve[i - 1].second + 1e-12);
  }
  EXPECT_GT(curve.back().second, 0.0);  // at least one experiment at max
}

TEST(MetricsTest, CostAccumulator) {
  CostAccumulator acc;
  acc.Add(2.0);
  acc.Add(4.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.total(), 6.0);
  EXPECT_EQ(acc.count(), 2u);
}

TEST(MetricsTest, FormatRowPads) {
  const std::string row = FormatRow({"a", "bb"}, {3, 4});
  EXPECT_EQ(row, "| a   | bb   |");
}

TEST(ExecutorTraceTest, AcquisitionOrderMatchesPlanTraversal) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  // Split on attr 0, then a sequential leaf over attrs 1, 3 on the >= side.
  auto leaf = PlanNode::Sequential({Predicate(1, 0, 5), Predicate(3, 0, 4)});
  Plan plan(PlanNode::Split(0, 2, PlanNode::Verdict(false), std::move(leaf)));
  Tuple t = {3, 1, 0, 2};
  RecordingSource src(t);
  ExecutionTrace trace;
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src, &trace);

  // Trace order must match the source's observed acquisition order exactly.
  ASSERT_EQ(trace.acquisitions().size(), src.order().size());
  for (size_t i = 0; i < src.order().size(); ++i) {
    EXPECT_EQ(trace.acquisitions()[i].attr, src.order()[i]);
  }
  EXPECT_EQ(src.order(), (std::vector<AttrId>{0, 1, 3}));
  // Branch path: one split, taken on the >= side.
  ASSERT_EQ(trace.branches().size(), 1u);
  EXPECT_EQ(trace.branches()[0].attr, 0);
  EXPECT_EQ(trace.branches()[0].split_value, 2);
  EXPECT_TRUE(trace.branches()[0].went_ge);
  // Verdict event carries the final outcome and total cost.
  EXPECT_EQ(trace.verdicts(), 1u);
  EXPECT_EQ(trace.verdict(), res.verdict);
  EXPECT_DOUBLE_EQ(trace.total_cost(), res.cost);
}

TEST(ExecutorTraceTest, AcquiredSetConsistentWithAcquisitionCount) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  auto leaf = PlanNode::Sequential({Predicate(2, 0, 3), Predicate(1, 0, 5)});
  Plan plan(PlanNode::Split(0, 2, std::move(leaf), PlanNode::Verdict(true)));
  Tuple t = {0, 2, 1, 4};
  RecordingSource src(t);
  ExecutionTrace trace;
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src, &trace);

  EXPECT_EQ(static_cast<size_t>(res.acquisitions),
            trace.acquisitions().size());
  EXPECT_EQ(static_cast<size_t>(res.acquired.Count()),
            trace.acquisitions().size());
  for (const TraceAcquisition& a : trace.acquisitions()) {
    EXPECT_TRUE(res.acquired.Contains(a.attr));
    EXPECT_EQ(a.value, t[a.attr]);
  }
}

TEST(ExecutorTraceTest, CostChargedOncePerAttribute) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  // Attr 0 appears in two splits and a predicate; trace must show exactly
  // one acquisition event for it, carrying the full marginal cost.
  auto leaf = PlanNode::Sequential({Predicate(0, 2, 2)});
  auto inner = PlanNode::Split(0, 3, std::move(leaf), PlanNode::Verdict(false));
  Plan plan(
      PlanNode::Split(0, 1, PlanNode::Verdict(false), std::move(inner)));
  Tuple t = {2, 0, 0, 0};
  RecordingSource src(t);
  ExecutionTrace trace;
  const ExecutionResult res = ExecutePlan(plan, schema, cm, src, &trace);

  ASSERT_EQ(trace.acquisitions().size(), 1u);
  EXPECT_EQ(trace.acquisitions()[0].attr, 0);
  EXPECT_DOUBLE_EQ(trace.acquisitions()[0].cost, schema.cost(0));
  // Summing trace marginal costs reproduces the executor's total charge.
  double traced_cost = 0.0;
  for (const TraceAcquisition& a : trace.acquisitions()) {
    traced_cost += a.cost;
  }
  EXPECT_DOUBLE_EQ(traced_cost, res.cost);
  // Both splits were still routed (and recorded) even though the attribute
  // was acquired once.
  EXPECT_EQ(trace.branches().size(), 2u);
}

TEST(ExecutorTraceTest, NullSinkMatchesTracedExecution) {
  const Schema schema = SmallSchema();
  PerAttributeCostModel cm(schema);
  auto leaf = PlanNode::Sequential({Predicate(1, 0, 2), Predicate(3, 0, 2)});
  Plan plan(PlanNode::Split(0, 2, std::move(leaf), PlanNode::Verdict(false)));
  Tuple t = {1, 1, 0, 1};
  RecordingSource s1(t);
  const ExecutionResult untraced = ExecutePlan(plan, schema, cm, s1);
  RecordingSource s2(t);
  ExecutionTrace trace;
  const ExecutionResult traced = ExecutePlan(plan, schema, cm, s2, &trace);
  EXPECT_EQ(untraced.verdict, traced.verdict);
  EXPECT_DOUBLE_EQ(untraced.cost, traced.cost);
  EXPECT_EQ(untraced.acquisitions, traced.acquisitions);
  EXPECT_EQ(s1.order(), s2.order());
}

}  // namespace
}  // namespace caqp
