// End-to-end drift detection: a QueryService with calibration enabled
// serves traffic whose distribution shifts mid-run. The calibration windows
// must show the drift score crossing the policy threshold, the DriftPolicy
// must bump the estimator version (invalidating the plan cache), and the
// replanned queries — built against the post-shift estimator — must realize
// a lower acquisition cost than the stale plan did on the shifted traffic.
// Suites are named Drift* so scripts/check.sh's TSan stage selects them
// with ctest -R '^Drift'.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "opt/cost_model.h"
#include "opt/naive.h"
#include "prob/dataset_estimator.h"
#include "serve/query_service.h"

namespace caqp {
namespace {

using serve::DriftPolicy;
using serve::DriftStatus;
using serve::QueryService;

// Two attributes with comparable costs but opposite selectivities before
// and after the shift, so the optimal predicate order flips:
//   regime A: P(a0 passes) = 0.10, P(a1 passes) = 0.90 -> evaluate a0 first,
//             expected cost 5 + 0.10 * 6 = 5.6
//   regime B: P(a0 passes) = 0.95, P(a1 passes) = 0.05 -> the stale plan
//             costs 5 + 0.95 * 6 = 10.7; replanning (a1 first) costs
//             6 + 0.05 * 5 = 6.25
Schema DriftSchema() {
  Schema s;
  s.AddAttribute("a0", 10, 5.0);
  s.AddAttribute("a1", 10, 6.0);
  return s;
}

Query DriftQuery() {
  return Query::Conjunction({Predicate(0, 0, 0), Predicate(1, 0, 8)});
}

Dataset RegimeA(const Schema& schema, size_t rows = 1000) {
  Dataset ds(schema);
  for (size_t i = 0; i < rows; ++i) {
    Tuple t(2);
    t[0] = (i % 10 == 0) ? 0 : 5;  // passes a0 in [0,0] 10% of the time
    t[1] = (i % 10 == 9) ? 9 : 3;  // passes a1 in [0,8] 90% of the time
    ds.Append(t);
  }
  return ds;
}

Dataset RegimeB(const Schema& schema, size_t rows = 1000) {
  Dataset ds(schema);
  for (size_t i = 0; i < rows; ++i) {
    Tuple t(2);
    t[0] = (i % 20 == 0) ? 5 : 0;  // passes a0 95% of the time
    t[1] = (i % 20 == 1) ? 3 : 9;  // passes a1 5% of the time
    ds.Append(t);
  }
  return ds;
}

/// Per-worker bundle holding planners for both regimes; the shared phase
/// flag — flipped by the drift hook — selects which one Build (and the
/// calibration stamping) uses, standing in for "retrain the estimator".
class PhasedBuilder : public serve::PlanBuilder {
 public:
  PhasedBuilder(const Schema& schema, const AcquisitionCostModel& cm,
                const std::atomic<int>& phase)
      : data_a_(RegimeA(schema)),
        data_b_(RegimeB(schema)),
        est_a_(data_a_),
        est_b_(data_b_),
        planner_a_(est_a_, cm),
        planner_b_(est_b_, cm),
        phase_(phase) {}

  Plan Build(const Query& query) override {
    return (phase_.load(std::memory_order_acquire) == 0 ? planner_a_
                                                        : planner_b_)
        .BuildPlan(query);
  }
  uint64_t ConfigFingerprint() const override { return 0xD21F7; }
  CondProbEstimator* CalibrationEstimator() override {
    return phase_.load(std::memory_order_acquire) == 0 ? &est_a_ : &est_b_;
  }

 private:
  // Estimators hold references; the training data must outlive them.
  Dataset data_a_;
  Dataset data_b_;
  DatasetEstimator est_a_;
  DatasetEstimator est_b_;
  NaivePlanner planner_a_;
  NaivePlanner planner_b_;
  const std::atomic<int>& phase_;
};

struct DriftFixture {
  Schema schema = DriftSchema();
  PerAttributeCostModel cm{schema};
  Dataset traffic_a = RegimeA(schema);
  Dataset traffic_b = RegimeB(schema);
  std::atomic<int> phase{0};

  QueryService MakeService(DriftPolicy policy) {
    QueryService::Options opts;
    opts.num_workers = 2;
    opts.cache_capacity = 64;
    opts.enable_calibration = true;
    opts.drift = std::move(policy);
    return QueryService(
        schema, cm,
        [this] { return std::make_unique<PhasedBuilder>(schema, cm, phase); },
        opts);
  }

  void ServeBatch(QueryService& service, const Dataset& traffic, size_t n) {
    const Query q = DriftQuery();
    for (size_t i = 0; i < n; ++i) {
      const QueryService::Response r =
          service.SubmitAndWait(q, traffic.GetTuple(i % traffic.num_rows()));
      ASSERT_TRUE(r.ok());
    }
  }
};

TEST(DriftTest, ShiftDetectedVersionBumpedAndReplanRecoversCost) {
  DriftFixture fx;
  DriftPolicy policy;
  policy.threshold = 0.3;
  policy.consecutive_windows = 2;
  policy.min_window_evals = 50;
  std::atomic<int>* phase = &fx.phase;
  policy.on_drift = [phase](const obs::CalibrationReport& window) {
    EXPECT_GT(window.executions, 0u);
    phase->store(1, std::memory_order_release);  // "retrain"
  };
  QueryService service = fx.MakeService(std::move(policy));

  // Window 1: traffic matches the training distribution — no drift.
  fx.ServeBatch(service, fx.traffic_a, 200);
  const DriftStatus w1 = service.CheckDrift();
  EXPECT_LT(w1.max_drift, 0.1);
  EXPECT_FALSE(w1.over_threshold);
  EXPECT_FALSE(w1.fired);
  EXPECT_EQ(service.estimator_version(), 0u);
  ASSERT_EQ(w1.window.plans.size(), 1u);
  // On-distribution: predictions calibrate, so regret is ~0.
  EXPECT_NEAR(w1.window.plans[0].realized_mean_cost(), 5.6, 0.05);
  EXPECT_NEAR(w1.window.regret(), 0.0, 0.05);

  // Window 2: the distribution shifts under the stale plan. One window over
  // threshold must NOT fire yet (debounce).
  fx.ServeBatch(service, fx.traffic_b, 200);
  const DriftStatus w2 = service.CheckDrift();
  EXPECT_GT(w2.max_drift, 0.3);
  EXPECT_TRUE(w2.over_threshold);
  EXPECT_EQ(w2.streak, 1);
  EXPECT_FALSE(w2.fired);
  EXPECT_EQ(service.estimator_version(), 0u);

  // Window 3: still drifted — the streak reaches the policy and fires.
  fx.ServeBatch(service, fx.traffic_b, 200);
  const DriftStatus w3 = service.CheckDrift();
  EXPECT_TRUE(w3.over_threshold);
  EXPECT_TRUE(w3.fired);
  EXPECT_EQ(fx.phase.load(), 1);  // on_drift ran before invalidation
  EXPECT_EQ(service.estimator_version(), 1u);
  ASSERT_EQ(w3.window.plans.size(), 1u);
  EXPECT_EQ(w3.window.plans[0].key.estimator_version, 0u);
  // The stale plan runs ~2x over its promise on shifted traffic.
  EXPECT_NEAR(w3.window.plans[0].realized_mean_cost(), 10.7, 0.05);
  EXPECT_GT(w3.window.regret(), 3.0);

  // Window 4: replanned under the post-shift estimator. New cache key
  // (bumped version), re-calibrated predictions, lower realized cost.
  fx.ServeBatch(service, fx.traffic_b, 200);
  const DriftStatus w4 = service.CheckDrift();
  EXPECT_LT(w4.max_drift, 0.1);
  EXPECT_FALSE(w4.over_threshold);
  EXPECT_FALSE(w4.fired);
  ASSERT_EQ(w4.window.plans.size(), 1u);
  EXPECT_EQ(w4.window.plans[0].key.estimator_version, 1u);
  EXPECT_NEAR(w4.window.plans[0].realized_mean_cost(), 6.25, 0.05);
  EXPECT_NEAR(w4.window.regret(), 0.0, 0.05);
  EXPECT_LT(w4.window.plans[0].realized_mean_cost(),
            w3.window.plans[0].realized_mean_cost());

  // The cumulative report keeps both plan generations, joinable by version.
  const obs::CalibrationReport cumulative = service.CalibrationSnapshot();
  ASSERT_EQ(cumulative.plans.size(), 2u);
  EXPECT_EQ(cumulative.executions, 800u);
}

TEST(DriftTest, ZeroThresholdReportsButNeverFires) {
  DriftFixture fx;
  DriftPolicy policy;  // threshold 0: reporting only
  QueryService service = fx.MakeService(std::move(policy));

  fx.ServeBatch(service, fx.traffic_b, 200);  // wildly off-distribution
  const DriftStatus w = service.CheckDrift();
  EXPECT_GT(w.max_drift, 0.3);  // drift is still measured...
  EXPECT_FALSE(w.over_threshold);
  EXPECT_FALSE(w.fired);  // ...but never acted on
  EXPECT_EQ(service.estimator_version(), 0u);
}

TEST(DriftTest, StreakResetsWhenDriftSubsides) {
  DriftFixture fx;
  DriftPolicy policy;
  policy.threshold = 0.3;
  policy.consecutive_windows = 2;
  policy.min_window_evals = 50;
  QueryService service = fx.MakeService(std::move(policy));

  fx.ServeBatch(service, fx.traffic_b, 200);  // over threshold: streak 1
  EXPECT_EQ(service.CheckDrift().streak, 1);
  fx.ServeBatch(service, fx.traffic_a, 200);  // back on-distribution
  const DriftStatus calm = service.CheckDrift();
  EXPECT_FALSE(calm.over_threshold);
  EXPECT_EQ(calm.streak, 0);  // debounce reset — no invalidation
  fx.ServeBatch(service, fx.traffic_b, 200);  // drifts again: streak restarts
  EXPECT_EQ(service.CheckDrift().streak, 1);
  EXPECT_EQ(service.estimator_version(), 0u);
}

TEST(DriftTest, CheckDriftWithoutCalibrationIsANoOp) {
  DriftFixture fx;
  QueryService::Options opts;
  opts.num_workers = 1;
  QueryService service(
      fx.schema, fx.cm,
      [&fx] { return std::make_unique<PhasedBuilder>(fx.schema, fx.cm,
                                                     fx.phase); },
      opts);
  fx.ServeBatch(service, fx.traffic_a, 10);
  const DriftStatus status = service.CheckDrift();
  EXPECT_TRUE(status.window.plans.empty());
  EXPECT_FALSE(status.fired);
  EXPECT_TRUE(service.CalibrationSnapshot().plans.empty());
}

}  // namespace
}  // namespace caqp
