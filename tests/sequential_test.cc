// Sequential solver tests: OptSeq against brute-force enumeration of all m!
// orders, GreedySeq internal consistency and correlation-awareness, Naive
// ranking behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "opt/planner.h"
#include "plan/plan_cost.h"
#include "prob/dataset_estimator.h"
#include "test_util.h"

namespace caqp {
namespace {

using testing_util::CorrelatedDataset;
using testing_util::SmallSchema;

/// Random SeqProblem over m predicates with a random sparse joint.
struct ProblemFixture {
  std::vector<Predicate> preds;
  MaskDistribution masks;
  std::vector<double> costs;
  SeqProblem problem;

  ProblemFixture(size_t m, uint64_t seed) {
    Rng rng(seed);
    for (size_t i = 0; i < m; ++i) {
      preds.emplace_back(static_cast<AttrId>(i), 0, 1);
      costs.push_back(rng.Uniform(1.0, 100.0));
    }
    const int entries = static_cast<int>(rng.UniformInt(3, 12));
    for (int e = 0; e < entries; ++e) {
      masks.Add(static_cast<uint64_t>(rng.UniformInt(0, (1 << m) - 1)),
                rng.Uniform(0.5, 5.0));
    }
    masks.Aggregate();
    problem.preds = preds;
    problem.masks = &masks;
    problem.cost = [this](size_t i, uint64_t) { return costs[i]; };
  }
};

double BruteForceBestOrder(const SeqProblem& problem,
                           std::vector<size_t>* best_order = nullptr) {
  std::vector<size_t> order(problem.preds.size());
  std::iota(order.begin(), order.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    const double c = SequentialOrderCost(problem, order);
    if (c < best) {
      best = c;
      if (best_order) *best_order = order;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

class OptSeqVsBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(OptSeqVsBruteForceTest, MatchesBestPermutation) {
  for (size_t m = 2; m <= 6; ++m) {
    ProblemFixture fx(m, static_cast<uint64_t>(GetParam()) * 1000 + m);
    OptSeqSolver solver;
    const SeqSolution sol = solver.Solve(fx.problem);
    const double brute = BruteForceBestOrder(fx.problem);
    ASSERT_NEAR(sol.expected_cost, brute, 1e-9) << "m=" << m;
    // The reported order realizes the reported cost.
    ASSERT_NEAR(SequentialOrderCost(fx.problem, sol.order), sol.expected_cost,
                1e-9);
    // Order is a permutation.
    std::vector<size_t> sorted = sol.order;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < m; ++i) ASSERT_EQ(sorted[i], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptSeqVsBruteForceTest,
                         ::testing::Range(1, 16));

TEST(OptSeqTest, EmptyProblem) {
  MaskDistribution masks;
  masks.Add(0, 1.0);
  masks.Aggregate();
  SeqProblem p;
  p.masks = &masks;
  p.cost = [](size_t, uint64_t) { return 1.0; };
  OptSeqSolver solver;
  const SeqSolution sol = solver.Solve(p);
  EXPECT_EQ(sol.expected_cost, 0.0);
  EXPECT_TRUE(sol.order.empty());
}

TEST(OptSeqTest, SingleCertainFailureGoesFirst) {
  // pred0: cheap, always true. pred1: expensive, always false.
  // Best: evaluate pred1? No: pred1 costs 100 and always stops the plan;
  // pred0 costs 1 but never stops it. Cost(1 first) = 100;
  // Cost(0 first) = 1 + 100 = 101. So pred1 first.
  MaskDistribution masks;
  masks.Add(0b01, 1.0);  // pred0 true, pred1 false -- always.
  masks.Aggregate();
  SeqProblem p;
  p.preds = {Predicate(0, 0, 1), Predicate(1, 0, 1)};
  p.masks = &masks;
  p.cost = [](size_t i, uint64_t) { return i == 0 ? 1.0 : 100.0; };
  OptSeqSolver solver;
  const SeqSolution sol = solver.Solve(p);
  EXPECT_EQ(sol.order.front(), 1u);
  EXPECT_NEAR(sol.expected_cost, 100.0, 1e-9);
}

TEST(OptSeqTest, ExploitsSetDependentCosts) {
  // Board model: evaluating pred0 powers the board shared with pred1.
  MaskDistribution masks;
  masks.Add(0b11, 1.0);  // both always true: both must be evaluated.
  masks.Aggregate();
  SeqProblem p;
  p.preds = {Predicate(0, 0, 1), Predicate(1, 0, 1)};
  p.masks = &masks;
  p.cost = [](size_t i, uint64_t evaluated) {
    (void)i;
    return evaluated == 0 ? 60.0 : 10.0;  // first acquisition powers board
  };
  OptSeqSolver solver;
  const SeqSolution sol = solver.Solve(p);
  EXPECT_NEAR(sol.expected_cost, 70.0, 1e-9);
}

class GreedySeqConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedySeqConsistencyTest, ReportedCostMatchesOrderCost) {
  for (size_t m = 2; m <= 8; ++m) {
    ProblemFixture fx(m, static_cast<uint64_t>(GetParam()) * 77 + m);
    GreedySeqSolver solver;
    const SeqSolution sol = solver.Solve(fx.problem);
    ASSERT_EQ(sol.order.size(), m);
    ASSERT_NEAR(SequentialOrderCost(fx.problem, sol.order), sol.expected_cost,
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedySeqConsistencyTest,
                         ::testing::Range(1, 11));

class GreedyVsOptTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsOptTest, GreedyWithinFourTimesOptimal) {
  // Munagala et al. prove a 4-approximation; verify on random instances.
  for (size_t m = 2; m <= 6; ++m) {
    ProblemFixture fx(m, static_cast<uint64_t>(GetParam()) * 313 + m);
    GreedySeqSolver greedy;
    OptSeqSolver opt;
    const double g = greedy.Solve(fx.problem).expected_cost;
    const double o = opt.Solve(fx.problem).expected_cost;
    ASSERT_GE(g + 1e-9, o);
    if (o > 0) {
      ASSERT_LE(g, 4.0 * o + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsOptTest, ::testing::Range(1, 16));

TEST(GreedySeqTest, UsesConditionalProbabilities) {
  // pred0 cheap & uninformative-but-cheap; preds 0 and 1 perfectly
  // correlated: once pred0 passes, pred1 always passes, so greedy should
  // learn the conditional p=1 and deprioritize pred1 relative to pred2.
  MaskDistribution masks;
  masks.Add(0b011, 5.0);  // 0,1 true; 2 false
  masks.Add(0b111, 5.0);  // all true
  masks.Add(0b100, 5.0);  // only 2 true
  masks.Add(0b000, 5.0);
  masks.Aggregate();
  SeqProblem p;
  p.preds = {Predicate(0, 0, 1), Predicate(1, 0, 1), Predicate(2, 0, 1)};
  p.masks = &masks;
  p.cost = [](size_t i, uint64_t) { return i == 0 ? 1.0 : 50.0; };
  GreedySeqSolver solver;
  const SeqSolution sol = solver.Solve(p);
  // pred0 first (cheap, p=0.5 -> rank 2). Then, conditioned on pred0,
  // pred1 has p=1 (rank inf) while pred2 has p=0.5 (rank 100): pred2 next.
  EXPECT_EQ(sol.order[0], 0u);
  EXPECT_EQ(sol.order[1], 2u);
  EXPECT_EQ(sol.order[2], 1u);
}

TEST(NaivePlannerTest, OrdersByCostOverDropProbability) {
  // Construct data where the expensive predicate is very selective and the
  // cheap one is not: rank(exp) = 100/(1-0.1)=111, rank(cheap)=1/(1-0.9)=10.
  Schema schema;
  schema.AddAttribute("cheap", 10, 1.0);
  schema.AddAttribute("exp", 10, 100.0);
  Dataset ds(schema);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    // cheap passes [0,8] ~90%; exp passes [0,0] ~10%.
    ds.Append({static_cast<Value>(rng.UniformInt(0, 9)),
               static_cast<Value>(rng.UniformInt(0, 9))});
  }
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  NaivePlanner planner(est, cm);
  Query q = Query::Conjunction({Predicate(0, 0, 8), Predicate(1, 0, 0)});
  Plan plan = planner.BuildPlan(q);
  ASSERT_EQ(plan.root().kind, PlanNode::Kind::kSequential);
  EXPECT_EQ(plan.root().sequence[0].attr, 0);  // cheap first by rank
  // With exp made selective enough, it would flip:
  Query q2 = Query::Conjunction({Predicate(0, 0, 8), Predicate(1, 9, 9)});
  // rank(exp) = 100/(1-0.1)=111 still > 10: cheap stays first.
  Plan plan2 = planner.BuildPlan(q2);
  EXPECT_EQ(plan2.root().sequence[0].attr, 0);
}

TEST(NaivePlannerTest, VerdictsAlwaysCorrect) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 400, 9);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  NaivePlanner planner(est, cm);
  Rng rng(10);
  for (int iter = 0; iter < 20; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng);
    const Plan plan = planner.BuildPlan(q);
    EXPECT_EQ(testing_util::CountVerdictMismatches(plan, q, schema), 0u);
  }
}

TEST(SequentialPlannerTest, CorrSeqBeatsNaiveOnCorrelatedTraining) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 2000, 11, /*noise=*/0.15);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  OptSeqSolver optseq;
  SequentialPlanner corrseq(est, cm, optseq, "CorrSeq");
  NaivePlanner naive(est, cm);
  Rng rng(12);
  double naive_total = 0, corr_total = 0;
  for (int iter = 0; iter < 25; ++iter) {
    const Query q = testing_util::RandomConjunctiveQuery(schema, rng);
    const Plan pn = naive.BuildPlan(q);
    const Plan pc = corrseq.BuildPlan(q);
    naive_total += EmpiricalPlanCost(pn, ds, q, cm).mean_cost;
    corr_total += EmpiricalPlanCost(pc, ds, q, cm).mean_cost;
  }
  // Optimal sequential on training data can never lose in aggregate.
  EXPECT_LE(corr_total, naive_total + 1e-6);
}

TEST(SolveSequentialLeafTest, DeterminedQueriesShortCircuit) {
  const Schema schema = SmallSchema();
  const Dataset ds = CorrelatedDataset(schema, 100, 13);
  DatasetEstimator est(ds);
  PerAttributeCostModel cm(schema);
  OptSeqSolver solver;
  RangeVec ranges = schema.FullRanges();
  ranges[0] = ValueRange{0, 0};
  // Query predicate determined false by the range.
  Query q = Query::Conjunction({Predicate(0, 2, 3)});
  SequentialLeaf leaf = SolveSequentialLeaf(q, ranges, est, cm, solver);
  EXPECT_EQ(leaf.expected_cost, 0.0);
  ASSERT_EQ(leaf.leaf->kind, PlanNode::Kind::kVerdict);
  EXPECT_FALSE(leaf.leaf->verdict);
}

}  // namespace
}  // namespace caqp
