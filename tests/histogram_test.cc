// Tests for Histogram and MaskDistribution, the planners' two statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "prob/histogram.h"
#include "prob/subproblem.h"

namespace caqp {
namespace {

TEST(HistogramTest, CountsAndProbabilities) {
  Histogram h(4);
  h.Add(0);
  h.Add(1, 2.0);
  h.Add(3);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_DOUBLE_EQ(h.Count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.RangeCount({0, 1}), 3.0);
  EXPECT_DOUBLE_EQ(h.Probability({0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(h.ValueProbability(3), 0.25);
}

TEST(HistogramTest, EmptyHistogramProbabilitiesAreZero) {
  Histogram h(4);
  EXPECT_DOUBLE_EQ(h.Probability({0, 3}), 0.0);
  EXPECT_DOUBLE_EQ(h.ValueProbability(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.StdDev(), 0.0);
}

TEST(HistogramTest, MeanAndStdDev) {
  Histogram h(10);
  h.Add(2);
  h.Add(4);
  h.Add(6);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
  EXPECT_NEAR(h.StdDev(), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(HistogramTest, RangeCountsPartitionTotal) {
  Rng rng(17);
  Histogram h(16);
  for (int i = 0; i < 500; ++i) {
    h.Add(static_cast<Value>(rng.UniformInt(0, 15)), rng.Uniform(0.1, 2.0));
  }
  for (Value split = 1; split < 16; ++split) {
    const double lo = h.RangeCount({0, static_cast<Value>(split - 1)});
    const double hi = h.RangeCount({split, 15});
    EXPECT_NEAR(lo + hi, h.total(), 1e-9);
  }
}

TEST(MaskDistributionTest, AggregateCollapsesDuplicates) {
  MaskDistribution d;
  d.Add(0b01, 1.0);
  d.Add(0b01, 2.0);
  d.Add(0b10, 1.0);
  d.Aggregate();
  EXPECT_EQ(d.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(d.total(), 4.0);
  EXPECT_DOUBLE_EQ(d.MassAllTrue(0b01), 3.0);
}

TEST(MaskDistributionTest, MassAllTrue) {
  MaskDistribution d;
  d.Add(0b11, 2.0);
  d.Add(0b01, 1.0);
  d.Add(0b00, 5.0);
  d.Aggregate();
  EXPECT_DOUBLE_EQ(d.MassAllTrue(0), 8.0);
  EXPECT_DOUBLE_EQ(d.MassAllTrue(0b01), 3.0);
  EXPECT_DOUBLE_EQ(d.MassAllTrue(0b10), 2.0);
  EXPECT_DOUBLE_EQ(d.MassAllTrue(0b11), 2.0);
}

TEST(MaskDistributionTest, ProbTrueGiven) {
  MaskDistribution d;
  d.Add(0b11, 2.0);
  d.Add(0b01, 2.0);
  d.Add(0b00, 4.0);
  d.Aggregate();
  // P(bit1 | bit0) = 2 / 4.
  EXPECT_DOUBLE_EQ(d.ProbTrueGiven(1, 0b01), 0.5);
  // P(bit0) = 4 / 8.
  EXPECT_DOUBLE_EQ(d.ProbTrueGiven(0, 0), 0.5);
  // Conditioning on an impossible event falls back.
  MaskDistribution empty;
  EXPECT_DOUBLE_EQ(empty.ProbTrueGiven(0, 0, 0.25), 0.25);
}

TEST(MaskDistributionTest, ConditionTrue) {
  MaskDistribution d;
  d.Add(0b11, 2.0);
  d.Add(0b01, 1.0);
  d.Add(0b10, 3.0);
  d.Aggregate();
  MaskDistribution c = d.ConditionTrue(0);
  EXPECT_DOUBLE_EQ(c.total(), 3.0);
  EXPECT_DOUBLE_EQ(c.MassAllTrue(0b10), 2.0);
}

TEST(MaskDistributionTest, SubtractRemovesPrefix) {
  MaskDistribution all;
  all.Add(0b0, 4.0);
  all.Add(0b1, 6.0);
  all.Aggregate();
  MaskDistribution part;
  part.Add(0b1, 2.5);
  part.Aggregate();
  MaskDistribution rest = all.Subtract(part);
  EXPECT_NEAR(rest.total(), 7.5, 1e-9);
  EXPECT_NEAR(rest.MassAllTrue(0b1), 3.5, 1e-9);
}

TEST(MaskDistributionTest, SubtractDropsZeroedEntries) {
  MaskDistribution all;
  all.Add(0b1, 2.0);
  all.Add(0b0, 1.0);
  all.Aggregate();
  MaskDistribution part;
  part.Add(0b1, 2.0);
  part.Aggregate();
  MaskDistribution rest = all.Subtract(part);
  EXPECT_EQ(rest.entries().size(), 1u);
  EXPECT_NEAR(rest.total(), 1.0, 1e-9);
}

TEST(MaskDistributionTest, MergeAddsWeights) {
  MaskDistribution a, b;
  a.Add(0b1, 1.0);
  a.Aggregate();
  b.Add(0b1, 2.0);
  b.Add(0b0, 3.0);
  b.Aggregate();
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total(), 6.0);
  EXPECT_DOUBLE_EQ(a.MassAllTrue(0b1), 3.0);
}

TEST(PredicateMaskTest, BuildsBitmaskFromTuple) {
  std::vector<Predicate> preds = {Predicate(0, 1, 2), Predicate(1, 0, 0),
                                  Predicate(2, 3, 5, /*neg=*/true)};
  EXPECT_EQ(PredicateMask(preds, {1, 0, 6}), 0b111u);
  EXPECT_EQ(PredicateMask(preds, {0, 0, 4}), 0b010u);
  EXPECT_EQ(PredicateMask(preds, {2, 1, 3}), 0b001u);
}

class MaskDistributionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaskDistributionPropertyTest, SubtractAndConditionConsistent) {
  Rng rng(GetParam());
  MaskDistribution full;
  const int m = 4;
  std::vector<std::pair<uint64_t, double>> raw;
  for (int i = 0; i < 300; ++i) {
    const uint64_t mask = static_cast<uint64_t>(rng.UniformInt(0, 15));
    const double w = rng.Uniform(0.1, 1.0);
    raw.emplace_back(mask, w);
    full.Add(mask, w);
  }
  full.Aggregate();

  // Split raw entries arbitrarily into two halves; Subtract must recover the
  // second half's statistics.
  MaskDistribution half;
  double half_total = 0;
  for (size_t i = 0; i < raw.size() / 2; ++i) {
    half.Add(raw[i].first, raw[i].second);
    half_total += raw[i].second;
  }
  half.Aggregate();
  MaskDistribution rest = full.Subtract(half);
  EXPECT_NEAR(rest.total(), full.total() - half_total, 1e-6);
  for (uint64_t s = 0; s < (1u << m); ++s) {
    EXPECT_NEAR(rest.MassAllTrue(s), full.MassAllTrue(s) - half.MassAllTrue(s),
                1e-6);
  }

  // ConditionTrue(b) preserves mass of supersets of b.
  for (int b = 0; b < m; ++b) {
    MaskDistribution c = full.ConditionTrue(b);
    EXPECT_NEAR(c.total(), full.MassAllTrue(uint64_t{1} << b), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskDistributionPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace caqp
