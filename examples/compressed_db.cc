// Compressed databases (paper Section 7 / Chen et al. [4]): when columns
// are stored compressed, "acquiring" an attribute means decompressing its
// block, which can dominate query time. Conditional plans reduce the number
// of decompressions exactly as they reduce sensor acquisitions.
//
// Scenario: a log-analytics table with a tiny uncompressed dictionary
// column (service id) and three heavily-compressed measure columns
// (latency, error rate, payload size). Service id strongly predicts all
// three, so the plan consults it before paying for any decompression.

#include <cstdio>

#include "common/rng.h"
#include "opt/greedy_plan.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "plan/plan_cost.h"
#include "plan/plan_printer.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

int main() {
  Schema schema;
  const AttrId service = schema.AddAttribute("service", 8, 1.0);
  const AttrId latency = schema.AddAttribute("latency_band", 8, 250.0);
  const AttrId errors = schema.AddAttribute("error_band", 4, 180.0);
  const AttrId payload = schema.AddAttribute("payload_band", 8, 220.0);

  // Historical blocks: services 0-2 are fast internal RPCs, 3-5 are user
  // APIs with higher latency and payload, 6-7 are flaky batch jobs.
  Rng rng(29);
  Dataset history(schema);
  auto clampv = [](int64_t v, uint32_t k) {
    return static_cast<Value>(std::max<int64_t>(0, std::min<int64_t>(k - 1, v)));
  };
  // Different failure signatures per tier: user APIs (tier 1) ship heavy
  // payloads but rarely error; batch jobs (tier 2) error often but carry
  // small payloads. Which predicate rejects a row fastest therefore
  // *depends on the service* -- the order-flip a conditional plan exploits.
  for (int i = 0; i < 40000; ++i) {
    const auto svc = static_cast<Value>(rng.UniformInt(0, 7));
    const double tier = svc < 3 ? 0.0 : (svc < 6 ? 1.0 : 2.0);
    const double payload_mean = (tier == 1.0) ? 5.5 : 1.5;
    const double error_mean = (tier == 2.0) ? 2.2 : 0.2;
    history.Append(
        {svc,
         clampv(static_cast<int64_t>(1 + 2.5 * tier + rng.Gaussian(0, 1.0)), 8),
         clampv(static_cast<int64_t>(error_mean + rng.Gaussian(0, 0.5)), 4),
         clampv(static_cast<int64_t>(payload_mean + rng.Gaussian(0, 1.2)),
                8)});
  }
  const auto [train, test] = history.SplitFraction(0.7);

  // Slow, erroring, heavy requests: an incident triage query.
  const Query query = Query::Conjunction({
      Predicate(latency, 4, 7),
      Predicate(errors, 1, 3),
      Predicate(payload, 4, 7),
  });
  std::printf("query: %s\n\n", query.ToString(schema).c_str());

  DatasetEstimator estimator(train);
  PerAttributeCostModel decompression(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;

  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &optseq;
  gopts.max_splits = 5;
  GreedyPlanner heuristic(estimator, decompression, gopts);
  NaivePlanner naive(estimator, decompression);

  const Plan p_heur = heuristic.BuildPlan(query);
  std::printf("conditional plan (%s):\n%s\n", PlanSummary(p_heur).c_str(),
              ExplainPlan(p_heur, estimator, decompression).c_str());

  const auto r_naive =
      EmpiricalPlanCost(naive.BuildPlan(query), test, query, decompression);
  const auto r_heur = EmpiricalPlanCost(p_heur, test, query, decompression);
  std::printf("mean decompression cost per row: naive=%.1f conditional=%.1f "
              "(%.2fx less work)\n",
              r_naive.mean_cost, r_heur.mean_cost,
              r_naive.mean_cost / r_heur.mean_cost);
  std::printf("verdict errors: %zu\n", r_heur.verdict_errors);
  (void)service;
  return 0;
}
