// Lab monitoring: the paper's Figure 9 case study. We generate a lab-like
// trace, ask for tuples that are "bright, cool and dry" (someone working in
// the lab at night), and print the conditional plan the greedy planner
// builds -- it conditions on hour and node id before paying for the
// expensive light/temperature/humidity sensors -- plus train/test costs for
// Naive, CorrSeq and Heuristic.

#include <cstdio>

#include "data/lab_gen.h"
#include "opt/greedy_plan.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "plan/plan_cost.h"
#include "plan/plan_printer.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

int main() {
  LabDataOptions lab;
  lab.readings = 60000;
  lab.num_motes = 10;
  const Dataset all = GenerateLabData(lab);
  const auto [train, test] = all.SplitFraction(0.6);
  const LabAttrs attrs = ResolveLabAttrs(all.schema());
  const Schema& schema = all.schema();

  // Bright (upper light bins), cool (lower temperature bins), dry (lower
  // humidity bins).
  const Query query = Query::Conjunction({
      Predicate(attrs.light, 5, 15),
      Predicate(attrs.temperature, 0, 7),
      Predicate(attrs.humidity, 0, 7),
  });
  std::printf("Query: %s\n\n", query.ToString(schema).c_str());

  DatasetEstimator estimator(train);
  PerAttributeCostModel cost_model(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;

  NaivePlanner naive(estimator, cost_model);
  SequentialPlanner corrseq(estimator, cost_model, optseq, "CorrSeq");
  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &optseq;
  gopts.max_splits = 5;
  GreedyPlanner heuristic(estimator, cost_model, gopts);

  const Plan p_naive = naive.BuildPlan(query);
  const Plan p_corr = corrseq.BuildPlan(query);
  const Plan p_heur = heuristic.BuildPlan(query);

  std::printf("Heuristic-5 conditional plan (%s):\n%s\n",
              PlanSummary(p_heur).c_str(), PrintPlan(p_heur, schema).c_str());

  std::printf("%-12s %14s %14s %10s\n", "planner", "train cost", "test cost",
              "errors");
  for (const auto& [name, plan] :
       {std::pair<const char*, const Plan*>{"Naive", &p_naive},
        {"CorrSeq", &p_corr},
        {"Heuristic-5", &p_heur}}) {
    const auto tr = EmpiricalPlanCost(*plan, train, query, cost_model);
    const auto te = EmpiricalPlanCost(*plan, test, query, cost_model);
    std::printf("%-12s %14.2f %14.2f %10zu\n", name, tr.mean_cost,
                te.mean_cost, te.verdict_errors);
  }
  return 0;
}
