// Existential queries (Section 7): "is there ANY mote recording high light
// AND high temperature?" expressed as a DNF over per-mote conjuncts. The
// exhaustive planner handles DNF natively through three-valued range
// evaluation; its conditional plan checks the cheapest, most-likely-to-
// succeed disjunct first and stops as soon as one mote matches.

#include <cstdio>

#include "common/rng.h"
#include "opt/exhaustive.h"
#include "plan/plan_cost.h"
#include "plan/plan_printer.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

int main() {
  // Binary "high/low" sensor bands keep the exhaustive DP small: with 7
  // attributes the subproblem space is a few thousand states.
  Schema schema;
  const AttrId hour = schema.AddAttribute("hour_band", 4, 1.0);
  std::vector<AttrId> light, temp;
  for (int m = 0; m < 3; ++m) {
    light.push_back(schema.AddAttribute("light_" + std::to_string(m), 2,
                                        /*cost=*/80.0));
    temp.push_back(schema.AddAttribute("temp_" + std::to_string(m), 2,
                                       /*cost=*/80.0));
  }

  // History: afternoons are bright and hot everywhere; mote 2 sits in a
  // greenhouse and trips the condition more often.
  Rng rng(17);
  Dataset history(schema);
  for (int i = 0; i < 20000; ++i) {
    Tuple t(schema.num_attributes());
    const auto h = static_cast<Value>(rng.UniformInt(0, 3));
    t[hour] = h;
    for (int m = 0; m < 3; ++m) {
      const double sun = (h == 2 || h == 3) ? 0.7 : 0.1;
      const double boost = (m == 2) ? 0.2 : 0.0;
      t[light[m]] = static_cast<Value>(rng.Bernoulli(sun + boost));
      t[temp[m]] = static_cast<Value>(rng.Bernoulli(sun + boost));
    }
    history.Append(t);
  }
  const auto [train, test] = history.SplitFraction(0.7);

  // EXISTS mote: light high AND temp high.
  std::vector<Conjunct> disjuncts;
  for (int m = 0; m < 3; ++m) {
    disjuncts.push_back(
        {Predicate(light[m], 1, 1), Predicate(temp[m], 1, 1)});
  }
  const Query query = Query::Disjunction(disjuncts);
  std::printf("EXISTS query: %s\n\n", query.ToString(schema).c_str());

  DatasetEstimator estimator(train);
  PerAttributeCostModel cost_model(schema);
  const SplitPointSet splits = SplitPointSet::EquiSpaced(
      schema, std::vector<uint32_t>(schema.num_attributes(), 3));
  ExhaustivePlanner::Options opts;
  opts.split_points = &splits;
  ExhaustivePlanner planner(estimator, cost_model, opts);
  const Plan plan = planner.BuildPlan(query);

  std::printf("Conditional plan (%s):\n%s\n", PlanSummary(plan).c_str(),
              PrintPlan(plan, schema).c_str());

  // Baseline: acquire every referenced attribute until resolution, in
  // schema order, with no conditioning.
  Plan baseline(PlanNode::Generic(query, query.ReferencedAttributes()));

  const auto r_plan = EmpiricalPlanCost(plan, test, query, cost_model);
  const auto r_base = EmpiricalPlanCost(baseline, test, query, cost_model);
  std::printf("mean cost: conditional=%.1f baseline=%.1f (%.2fx cheaper)\n",
              r_plan.mean_cost, r_base.mean_cost,
              r_base.mean_cost / r_plan.mean_cost);
  std::printf("verdict errors: conditional=%zu baseline=%zu\n",
              r_plan.verdict_errors, r_base.verdict_errors);
  return 0;
}
