// Quickstart: the smallest end-to-end use of CAQP.
//
// 1. Build (or load) a discretized historical dataset.
// 2. Wrap it in a DatasetEstimator.
// 3. Ask a planner for a plan for your query.
// 4. Execute the plan over new tuples, paying acquisition costs lazily.
// 5. Optionally observe the run: planner stats and an execution trace.
//
// The data here is the paper's Figure 2 situation: two expensive sensors
// whose selectivities flip between night and day, plus a free clock. The
// conditional plan reads the clock and orders the expensive predicates
// differently per branch, cutting expected cost from 1.5 to ~1.1 units.

#include <cstdio>

#include "common/rng.h"
#include "exec/executor.h"
#include "obs/trace.h"
#include "opt/greedy_plan.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "plan/plan_cost.h"
#include "plan/plan_printer.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

int main() {
  // --- 1. A schema and some history -------------------------------------
  Schema schema;
  schema.AddAttribute("is_day", 2, /*cost=*/0.0);
  const AttrId temp = schema.AddAttribute("temp_hot", 2, /*cost=*/1.0);
  const AttrId light = schema.AddAttribute("light_low", 2, /*cost=*/1.0);

  Rng rng(7);
  Dataset history(schema);
  for (int i = 0; i < 20000; ++i) {
    const bool day = rng.Bernoulli(0.5);
    // In Berkeley in summer (per the paper): hot mostly by day, dark mostly
    // by night.
    const bool hot = rng.Bernoulli(day ? 0.9 : 0.1);
    const bool dark = rng.Bernoulli(day ? 0.1 : 0.9);
    history.Append({static_cast<Value>(day), static_cast<Value>(hot),
                    static_cast<Value>(dark)});
  }

  // --- 2. Estimator, cost model, query ----------------------------------
  DatasetEstimator estimator(history);
  PerAttributeCostModel cost_model(schema);
  const Query query = Query::Conjunction(
      {Predicate(temp, 1, 1), Predicate(light, 1, 1)});  // hot AND dark

  // --- 3. Plans: traditional vs conditional ------------------------------
  NaivePlanner naive(estimator, cost_model);
  const Plan naive_plan = naive.BuildPlan(query);

  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &optseq;
  opts.max_splits = 3;
  GreedyPlanner greedy(estimator, cost_model, opts);
  const Plan cond_plan = greedy.BuildPlan(query);

  std::printf("Query: %s\n\n", query.ToString(schema).c_str());
  std::printf("Naive sequential plan:\n%s\n",
              PrintPlan(naive_plan, schema).c_str());
  std::printf("Conditional plan (%s):\n%s\n",
              PlanSummary(cond_plan).c_str(),
              PrintPlan(cond_plan, schema).c_str());

  // --- 4. Costs ----------------------------------------------------------
  const double c_naive = ExpectedPlanCost(naive_plan, estimator, cost_model);
  const double c_cond = ExpectedPlanCost(cond_plan, estimator, cost_model);
  std::printf("expected cost: naive=%.3f conditional=%.3f (%.1f%% saved)\n",
              c_naive, c_cond, 100.0 * (1.0 - c_cond / c_naive));

  // Execute over a fresh tuple.
  Tuple tonight = {0, 0, 1};  // night, not hot, dark
  TupleSource source(tonight);
  const ExecutionResult res =
      ExecutePlan(cond_plan, schema, cost_model, source);
  std::printf("tonight's tuple: verdict=%s, paid %.1f cost units, %d reads\n",
              res.verdict ? "PASS" : "FAIL", res.cost, res.acquisitions);

  // --- 5. Observability ---------------------------------------------------
  // Planner stats were collected during BuildPlan above.
  const obs::PlannerStats& stats = greedy.planner_stats();
  std::printf("\nplanner: %zu split searches, %zu splits taken, "
              "%zu leaf solves\n",
              stats.split_searches, stats.splits_taken, stats.seq_solves);

  // An ExecutionTrace records the acquisition order and branch path of a
  // single tuple (tools/caqp_plan --trace-out streams these as JSONL).
  ExecutionTrace trace;
  TupleSource traced_source(tonight);
  (void)ExecutePlan(cond_plan, schema, cost_model, traced_source, &trace);
  std::printf("trace:");
  for (const TraceAcquisition& a : trace.acquisitions()) {
    std::printf(" %s=%u(+%.1f)", schema.name(a.attr).c_str(), a.value,
                a.cost);
  }
  std::printf(" -> %s\n", trace.verdict() ? "PASS" : "FAIL");
  return 0;
}
