// Web acquisition: the paper's Section 7 observation that the same machinery
// applies wherever per-attribute acquisition is expensive -- here, remote
// web services with high latency.
//
// Scenario: a travel-deal screener evaluates, per candidate trip,
//   price_ok AND seats_ok AND weather_ok
// where price comes from a slow fare API (800 ms), seat availability from a
// GDS call (600 ms), weather from a forecast API (300 ms) -- and two locally
// cached attributes, route popularity and season, are free-ish (5 ms). The
// cached attributes correlate with the expensive ones, so a conditional plan
// saves most of the latency.

#include <cstdio>

#include "common/rng.h"
#include "opt/greedy_plan.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "plan/plan_cost.h"
#include "plan/plan_printer.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

int main() {
  Schema schema;
  const AttrId popularity = schema.AddAttribute("popularity", 4, 5.0);
  const AttrId season = schema.AddAttribute("season", 4, 5.0);
  const AttrId price = schema.AddAttribute("price_band", 8, 800.0);
  const AttrId seats = schema.AddAttribute("seats_band", 4, 600.0);
  const AttrId weather = schema.AddAttribute("weather_band", 4, 300.0);

  // History: popular routes in high season are pricey and full; weather is
  // seasonal.
  Rng rng(11);
  Dataset history(schema);
  auto draw = [&](Rng& r) {
    const auto pop = static_cast<Value>(r.UniformInt(0, 3));
    const auto sea = static_cast<Value>(r.UniformInt(0, 3));
    const double demand = (pop + sea) / 6.0;  // 0..1
    const auto price_band = static_cast<Value>(std::min<int64_t>(
        7, std::max<int64_t>(0, static_cast<int64_t>(demand * 7 +
                                                     r.Gaussian(0, 1.0)))));
    const auto seat_band = static_cast<Value>(std::min<int64_t>(
        3, std::max<int64_t>(0, static_cast<int64_t>((1.0 - demand) * 3 +
                                                     r.Gaussian(0, 0.6)))));
    const auto weather_band = static_cast<Value>(std::min<int64_t>(
        3, std::max<int64_t>(0, sea + static_cast<int64_t>(
                                          r.Gaussian(0, 0.7)))));
    return Tuple{pop, sea, price_band, seat_band, weather_band};
  };
  for (int i = 0; i < 30000; ++i) history.Append(draw(rng));
  const auto [train, test] = history.SplitFraction(0.7);

  // Cheap deals with seats and decent weather.
  const Query query = Query::Conjunction({
      Predicate(price, 0, 2),    // low price bands
      Predicate(seats, 2, 3),    // seats available
      Predicate(weather, 1, 3),  // not terrible
  });
  std::printf("Query: %s\n\n", query.ToString(schema).c_str());

  DatasetEstimator estimator(train);
  PerAttributeCostModel latency(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;

  NaivePlanner naive(estimator, latency);
  SequentialPlanner corrseq(estimator, latency, optseq, "CorrSeq");
  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &optseq;
  gopts.max_splits = 6;
  GreedyPlanner heuristic(estimator, latency, gopts);

  const Plan p_heur = heuristic.BuildPlan(query);
  std::printf("Conditional screening plan (%s):\n%s\n",
              PlanSummary(p_heur).c_str(), PrintPlan(p_heur, schema).c_str());

  std::printf("%-12s %18s\n", "planner", "mean latency (ms)");
  for (const auto& [name, plan] :
       {std::pair<const char*, CompiledPlan>{
            "Naive", CompiledPlan::Compile(naive.BuildPlan(query))},
        {"CorrSeq", CompiledPlan::Compile(corrseq.BuildPlan(query))},
        {"Heuristic-6", CompiledPlan::Compile(p_heur)}}) {
    const auto res = EmpiricalPlanCost(plan, test, query, latency);
    std::printf("%-12s %18.1f\n", name, res.mean_cost);
  }
  (void)popularity;
  (void)season;
  return 0;
}
