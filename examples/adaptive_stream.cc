// Adaptive streams (Section 7): conditional plans over a stream whose
// correlation structure drifts. The AdaptivePlanner maintains a sliding
// window, re-estimates probabilities, and swaps plans when the incumbent
// falls behind. We print realized cost per 1000-tuple block; watch it spike
// at the drift point and recover after the next replan.

#include <cstdio>

#include "common/rng.h"
#include "opt/adaptive.h"
#include "opt/optseq.h"

using namespace caqp;

int main() {
  Schema schema;
  schema.AddAttribute("hour_band", 4, 1.0);
  schema.AddAttribute("vibration", 2, 60.0);
  schema.AddAttribute("acoustics", 2, 60.0);

  const Query query =
      Query::Conjunction({Predicate(1, 1, 1), Predicate(2, 1, 1)});
  PerAttributeCostModel cost_model(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;

  AdaptivePlanner::Options opts;
  opts.window_size = 2500;
  opts.replan_interval = 500;
  opts.split_points = &splits;
  opts.seq_solver = &optseq;
  opts.max_splits = 4;
  AdaptivePlanner planner(schema, query, cost_model, opts);

  Rng rng(3);
  // Vibration trips during busy hours; acoustics trips during idle hours
  // (night HVAC). The hour band therefore flips which predicate is likely
  // to fail -- exactly what a conditional plan exploits. The drift swaps
  // the two sensors' roles, invalidating the incumbent plan's branch
  // orders.
  auto draw = [&](int regime) {
    const auto hour = static_cast<Value>(rng.UniformInt(0, 3));
    const bool busy = hour >= 2;
    const double p_vib = (regime == 0) == busy ? 0.85 : 0.10;
    const double p_ac = (regime == 0) == busy ? 0.10 : 0.85;
    return Tuple{hour, static_cast<Value>(rng.Bernoulli(p_vib)),
                 static_cast<Value>(rng.Bernoulli(p_ac))};
  };

  const int blocks = 16;
  const int block_size = 1000;
  std::printf("%-8s %-10s %-14s %s\n", "block", "regime", "mean cost",
              "replans adopted");
  for (int b = 0; b < blocks; ++b) {
    const int regime = (b < blocks / 2) ? 0 : 1;  // drift at halftime
    double cost = 0;
    for (int i = 0; i < block_size; ++i) cost += planner.Observe(draw(regime));
    std::printf("%-8d %-10d %-14.2f %zu\n", b, regime, cost / block_size,
                planner.stats().replans_adopted);
  }
  std::printf(
      "\n%zu tuples, %zu replans considered, %zu adopted, total cost %.0f\n",
      planner.stats().tuples_seen, planner.stats().replans_considered,
      planner.stats().replans_adopted, planner.stats().total_cost);
  return 0;
}
