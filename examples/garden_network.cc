// Garden network: full sensor-network simulation (Figure 4 architecture).
// A basestation trains a conditional plan from garden history, radios it to
// motes (paying per-byte dissemination energy -- the alpha * zeta(P) term of
// Section 2.4), and runs a continuous query for many epochs. We compare a
// naive plan against the Heuristic plan on total network energy.

#include <cstdio>
#include <memory>

#include "data/garden_gen.h"
#include "data/workload.h"
#include "net/basestation.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "plan/plan_printer.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

namespace {

/// Runs one dissemination + continuous-query round and returns total mote
/// acquisition energy.
double RunNetwork(const Plan& plan, const Schema& schema,
                  const AcquisitionCostModel& cm, const Dataset& live,
                  size_t epochs) {
  Radio radio(Radio::Options{.cost_per_byte = 0.05});
  Basestation base(schema, cm, radio);
  std::vector<std::unique_ptr<Mote>> motes;
  std::vector<Mote*> ptrs;
  // One logical "network state" tuple per epoch; a single executor node
  // evaluates the network-wide query (the paper treats the whole network as
  // one 16/34-attribute relation).
  motes.push_back(std::make_unique<Mote>(
      0, schema, cm, [&live](size_t epoch, AttrId attr) {
        return live.at(static_cast<RowId>(epoch % live.num_rows()), attr);
      }));
  ptrs.push_back(motes.back().get());
  base.Disseminate(plan, ptrs);

  const auto reports = base.RunContinuousQuery(ptrs, epochs);
  double acquisition = 0;
  size_t matches = 0;
  for (const auto& rep : reports) {
    acquisition += rep.acquisition_cost;
    matches += rep.matches;
  }
  std::printf("    plan bytes=%zu, radio bytes=%zu, matches=%zu/%zu epochs\n",
              PlanSizeBytes(plan), radio.bytes_sent(), matches, epochs);
  std::printf("    mote energy: acquisition+radio = %.0f units\n",
              motes[0]->energy().spent());
  return acquisition;
}

}  // namespace

int main() {
  GardenDataOptions garden;
  garden.num_motes = 5;
  garden.epochs = 20000;
  const Dataset all = GenerateGardenData(garden);
  const auto [train, test] = all.SplitFraction(0.6);
  const Schema& schema = all.schema();
  const GardenAttrs attrs = ResolveGardenAttrs(schema);

  // One network-wide query: every mote warm AND every mote humid -- a
  // muggy spell. Warmth holds by day, high humidity by night, so the hour
  // flips which sensor type is likely to reject a tuple: a conditional
  // plan branches on the (free) hour and probes the likely-failing sensor
  // type first, while sequential plans must commit to one order.
  Conjunct preds;
  for (AttrId a : attrs.temperature) {
    preds.emplace_back(a, 5, 11);  // warm half of the domain
  }
  for (AttrId a : attrs.humidity) {
    preds.emplace_back(a, 5, 11);  // humid half
  }
  const Query query = Query::Conjunction(std::move(preds));
  std::printf("Query (%zu predicates): %s\n\n", query.predicates().size(),
              query.ToString(schema).c_str());

  DatasetEstimator estimator(train);
  PerAttributeCostModel cost_model(schema);
  const SplitPointSet splits =
      SplitPointSet::FromLog10Spsf(schema, schema.num_attributes());
  GreedySeqSolver greedyseq;

  NaivePlanner naive(estimator, cost_model);
  const Plan p_naive = naive.BuildPlan(query);

  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &greedyseq;
  gopts.max_splits = 5;
  GreedyPlanner heuristic(estimator, cost_model, gopts);
  const Plan p_heur = heuristic.BuildPlan(query);

  const size_t epochs = 4000;
  std::printf("Naive plan over %zu epochs:\n", epochs);
  const double e_naive =
      RunNetwork(p_naive, schema, cost_model, test, epochs);
  std::printf("Heuristic-5 plan over %zu epochs:\n", epochs);
  const double e_heur = RunNetwork(p_heur, schema, cost_model, test, epochs);

  std::printf(
      "\nacquisition energy: naive=%.0f heuristic=%.0f  (%.2fx cheaper)\n",
      e_naive, e_heur, e_naive / e_heur);
  return 0;
}
