// Figure 2 (Section 2.1 motivating example): two unit-cost predicates with
// marginal selectivity 1/2 whose conditional selectivities flip between
// night and day. The paper reports: every traditional (sequential) plan
// costs 1.5 units in expectation; the conditional plan that branches on the
// time of day costs 1.1 units.

#include <cstdio>

#include "bench_util.h"
#include "opt/exhaustive.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "plan/plan_printer.h"
#include "prob/dataset_estimator.h"

using namespace caqp;
using namespace caqp::bench;

int main(int argc, char** argv) {
  InitBench("fig2_motivating", argc, argv);
  Banner("Figure 2: motivating example (expected costs 1.5 vs 1.1)");

  Schema schema;
  schema.AddAttribute("time", 2, 0.0);  // free clock
  schema.AddAttribute("temp", 2, 1.0);
  schema.AddAttribute("light", 2, 1.0);

  // Counts chosen so that P(pred) = 1/2 marginally, 1/10 in the
  // unfavourable half of the day (Section 2.1's worked numbers).
  Dataset data(schema);
  auto add = [&](Value t, Value temp, Value light, int copies) {
    for (int i = 0; i < copies; ++i) data.Append({t, temp, light});
  };
  // Night (time=0): temp passes 1/10, light passes 9/10.
  add(0, 1, 1, 9);
  add(0, 1, 0, 1);
  add(0, 0, 1, 81);
  add(0, 0, 0, 9);
  // Day (time=1): mirrored.
  add(1, 1, 1, 9);
  add(1, 0, 1, 1);
  add(1, 1, 0, 81);
  add(1, 0, 0, 9);

  const Query query =
      Query::Conjunction({Predicate(1, 1, 1), Predicate(2, 1, 1)});

  DatasetEstimator est(data);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::AllPoints(schema);

  NaivePlanner naive(est, cm);
  OptSeqSolver optseq;
  SequentialPlanner corrseq(est, cm, optseq, "CorrSeq");
  ExhaustivePlanner::Options eopts;
  eopts.split_points = &splits;
  ExhaustivePlanner exhaustive(est, cm, eopts);

  const Plan p_naive = naive.BuildPlan(query);
  const Plan p_corr = corrseq.BuildPlan(query);
  const Plan p_cond = exhaustive.BuildPlan(query);

  std::printf("\nConditional plan found:\n%s\n",
              PrintPlan(p_cond, schema).c_str());

  std::vector<std::string> rows;
  std::printf("%-22s %14s  (paper)\n", "plan", "expected cost");
  auto report = [&](const char* name, const Plan& p, const char* paper) {
    const double c = EmpiricalPlanCost(p, data, query, cm).mean_cost;
    std::printf("%-22s %14.3f  %s\n", name, c, paper);
    rows.push_back(std::string(name) + "," + std::to_string(c));
  };
  report("Naive sequential", p_naive, "1.5");
  report("CorrSeq sequential", p_corr, "1.5");
  report("Conditional (optimal)", p_cond, "1.1");
  WriteCsv("fig2_motivating", "plan,expected_cost", rows);
  FinishBench();
  return 0;
}
