// Executor hot path: tree recursion vs flat per-tuple iteration vs columnar
// batch execution.
//
// The CompiledPlan refactor exists so motes and the serve layer never walk a
// pointer tree per tuple; the columnar batch executor exists so batch
// consumers (dist shards, the simulator) never pay per-tuple dispatch at
// all. This bench quantifies both on the garden workload (the paper's
// deployment scenario): plan every query with the heuristic planner, then
// execute the test split three ways --
//
//   tree   ExecutePlan(const Plan&)        recursive, pointer-chasing,
//                                          AttrSet dedup on every split
//   flat   ExecuteBatch(const CompiledPlan&)  iterative over the node array,
//                                          first-acquisition flags, reused
//                                          scratch across tuples
//   batch  ColumnarBatchExecutor::Execute  selection-vector kernels over
//                                          column slices, statically
//                                          precomputed marginal costs
//
// Acceptance bars: flat >= 1.5x tree and batch >= 4x flat on per-tuple
// latency, with all three paths agreeing on total acquisition cost to the
// bit. A second section replays a repeated-query workload through a cached
// QueryService and asserts the hot path performs zero PlanNode clones end
// to end.
//
// --json-out <path> writes the obs metrics registry (bench_util.h).

#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "bench_util.h"
#include "data/garden_gen.h"
#include "data/workload.h"
#include "exec/batch_executor.h"
#include "exec/executor.h"
#include "obs/registry.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "plan/compiled_plan.h"
#include "prob/dataset_estimator.h"
#include "serve/query_service.h"

using namespace caqp;

namespace {

constexpr size_t kQueries = 12;
constexpr size_t kReps = 5;  ///< timed passes over the test split, best-of
constexpr uint64_t kSeed = 20050405;

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ExecTiming {
  double tree_ns_per_tuple = 0.0;
  double flat_ns_per_tuple = 0.0;
  double batch_ns_per_tuple = 0.0;
  double checksum = 0.0;  ///< anti-DCE sink; also a tree/flat agreement check
  double batch_checksum = 0.0;  ///< flat vs columnar total-cost agreement
};

/// Times one plan all three ways over every test tuple, best-of-kReps.
ExecTiming TimePlan(const Plan& tree, const CompiledPlan& flat,
                    const Dataset& test, const AcquisitionCostModel& cm) {
  const Schema& schema = test.schema();
  const size_t rows = test.num_rows();
  std::vector<RowId> ids(rows);
  for (RowId r = 0; r < rows; ++r) ids[r] = r;

  // Built once outside the timed reps, like a shard would hold it: the
  // constructor's per-node cost precomputation and scratch allocation
  // amortize over every batch the plan ever executes.
  ColumnarBatchExecutor batch_exec(flat, test, cm);

  ExecTiming out;
  double tree_best = 1e300, flat_best = 1e300, batch_best = 1e300;
  double tree_cost = 0.0, flat_cost = 0.0, batch_cost = 0.0;
  for (size_t rep = 0; rep < kReps; ++rep) {
    tree_cost = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (RowId r = 0; r < rows; ++r) {
      const Tuple t = test.GetTuple(r);
      TupleSource src(t);
      tree_cost += ExecutePlan(tree, schema, cm, src).cost;
    }
    tree_best = std::min(tree_best, Seconds(t0));

    t0 = std::chrono::steady_clock::now();
    const BatchExecutionStats stats = ExecuteBatch(flat, test, ids, cm);
    flat_best = std::min(flat_best, Seconds(t0));
    flat_cost = stats.total_cost;

    t0 = std::chrono::steady_clock::now();
    const BatchExecutionStats batch_stats = batch_exec.Execute(ids);
    batch_best = std::min(batch_best, Seconds(t0));
    batch_cost = batch_stats.total_cost;
  }
  out.tree_ns_per_tuple = tree_best * 1e9 / static_cast<double>(rows);
  out.flat_ns_per_tuple = flat_best * 1e9 / static_cast<double>(rows);
  out.batch_ns_per_tuple = batch_best * 1e9 / static_cast<double>(rows);
  out.checksum = tree_cost - flat_cost;        // identical semantics => 0
  out.batch_checksum = flat_cost - batch_cost;  // bit-identical => 0
  return out;
}

class BenchPlanBuilder : public serve::PlanBuilder {
 public:
  BenchPlanBuilder(CondProbEstimator& est, const AcquisitionCostModel& cm,
                   const SplitPointSet& splits, const SequentialSolver& solver)
      : est_(est) {
    GreedyPlanner::Options gopts;
    gopts.split_points = &splits;
    gopts.seq_solver = &solver;
    gopts.max_splits = 5;
    planner_ = std::make_unique<GreedyPlanner>(est_, cm, gopts);
  }
  Plan Build(const Query& query) override { return planner_->BuildPlan(query); }
  uint64_t ConfigFingerprint() const override { return 0x65'78'65'63ULL; }

 private:
  CondProbEstimator& est_;
  std::unique_ptr<GreedyPlanner> planner_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("bench_exec", argc, argv);
  bench::Banner("executor: CompiledPlan flat iteration vs Plan tree walk");

  GardenDataOptions gopts;
  gopts.num_motes = 5;
  gopts.epochs = 20000;
  const Dataset all = GenerateGardenData(gopts);
  const auto [train, test] = all.SplitFraction(0.6);
  const Schema& schema = all.schema();
  const GardenAttrs attrs = ResolveGardenAttrs(schema);

  GardenQueryOptions qopts;
  qopts.num_queries = kQueries;
  const std::vector<Query> queries = GenerateGardenQueries(
      schema, attrs.temperature, attrs.humidity, qopts);

  DatasetEstimator est(train);
  PerAttributeCostModel cm(schema);
  const SplitPointSet splits = SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes()));
  GreedySeqSolver greedyseq;
  GreedyPlanner::Options hopts;
  hopts.split_points = &splits;
  hopts.seq_solver = &greedyseq;
  hopts.max_splits = 5;
  GreedyPlanner heuristic(est, cm, hopts);

  std::printf("%zu garden attributes; %zu queries; %zu test tuples; "
              "best of %zu passes\n\n",
              schema.num_attributes(), queries.size(), test.num_rows(), kReps);

  std::printf("%5s %6s %6s %12s %12s %13s %8s %8s\n", "query", "nodes",
              "depth", "tree ns/tup", "flat ns/tup", "batch ns/tup",
              "f/t", "b/f");
  std::vector<std::string> rows;
  double tree_total = 0.0, flat_total = 0.0, batch_total = 0.0;
  double checksum = 0.0, batch_checksum = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Plan plan = heuristic.BuildPlan(queries[i]);
    const CompiledPlan compiled = CompiledPlan::Compile(plan);
    const ExecTiming t = TimePlan(plan, compiled, test, cm);
    tree_total += t.tree_ns_per_tuple;
    flat_total += t.flat_ns_per_tuple;
    batch_total += t.batch_ns_per_tuple;
    checksum += t.checksum;
    batch_checksum += t.batch_checksum;
    std::printf("%5zu %6zu %6zu %12.0f %12.0f %13.1f %7.2fx %7.2fx\n", i,
                compiled.NumNodes(), compiled.Depth(), t.tree_ns_per_tuple,
                t.flat_ns_per_tuple, t.batch_ns_per_tuple,
                t.tree_ns_per_tuple / t.flat_ns_per_tuple,
                t.flat_ns_per_tuple / t.batch_ns_per_tuple);
    rows.push_back(std::to_string(i) + "," +
                   std::to_string(compiled.NumNodes()) + "," +
                   std::to_string(t.tree_ns_per_tuple) + "," +
                   std::to_string(t.flat_ns_per_tuple) + "," +
                   std::to_string(t.batch_ns_per_tuple));
  }
  const double speedup = tree_total / flat_total;
  const double batch_speedup = flat_total / batch_total;
  std::printf("\nmean per-tuple latency: tree %.0f ns, flat %.0f ns, "
              "batch %.1f ns -> flat/tree %.2fx (bar: >= 1.5x), "
              "batch/flat %.2fx (bar: >= 4x)\n",
              tree_total / static_cast<double>(queries.size()),
              flat_total / static_cast<double>(queries.size()),
              batch_total / static_cast<double>(queries.size()), speedup,
              batch_speedup);
  if (checksum != 0.0) {
    std::printf("ERROR: tree and flat execution disagree on total cost "
                "(delta %.17g)\n", checksum);
  }
  if (batch_checksum != 0.0) {
    std::printf("ERROR: flat and columnar batch execution disagree on total "
                "cost (delta %.17g)\n", batch_checksum);
  }

  // -------------------------------------------------------------------------
  // Cached serving end to end: after the single-flight leader compiles the
  // plan into the cache, repeat requests must clone zero PlanNodes.
  // -------------------------------------------------------------------------
  serve::QueryService::Options sopts;
  sopts.num_workers = 4;
  sopts.cache_capacity = 256;
  serve::QueryService service(
      schema, cm,
      [&] {
        return std::make_unique<BenchPlanBuilder>(est, cm, splits, greedyseq);
      },
      sopts);

  std::mt19937_64 rng(kSeed);
  for (const Query& q : queries) {  // warm: one build per distinct query
    service.SubmitAndWait(q, test.GetTuple(0));
  }
  const uint64_t clones_before =
      obs::DefaultRegistry().GetCounter("plan.node_clones").value();
  constexpr size_t kServeRequests = 20000;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t r = 0; r < kServeRequests; ++r) {
    service.SubmitAndWait(
        queries[rng() % queries.size()],
        test.GetTuple(static_cast<RowId>(rng() % test.num_rows())));
  }
  const double serve_elapsed = Seconds(t0);
  const uint64_t hot_clones =
      obs::DefaultRegistry().GetCounter("plan.node_clones").value() -
      clones_before;
  const double serve_rps = static_cast<double>(kServeRequests) / serve_elapsed;
  std::printf("\ncached serve: %zu requests in %.3fs (%.0f r/s), "
              "%llu PlanNode clones on the hot path (bar: 0)\n",
              kServeRequests, serve_elapsed, serve_rps,
              static_cast<unsigned long long>(hot_clones));

  CAQP_OBS_GAUGE_SET("bench_exec.tree_ns_per_tuple",
                     tree_total / static_cast<double>(queries.size()));
  CAQP_OBS_GAUGE_SET("bench_exec.flat_ns_per_tuple",
                     flat_total / static_cast<double>(queries.size()));
  CAQP_OBS_GAUGE_SET("bench_exec.batch_ns_per_tuple",
                     batch_total / static_cast<double>(queries.size()));
  CAQP_OBS_GAUGE_SET("bench_exec.speedup", speedup);
  CAQP_OBS_GAUGE_SET("bench_exec.batch_speedup", batch_speedup);
  CAQP_OBS_GAUGE_SET("bench_exec.cached_serve_rps", serve_rps);
  CAQP_OBS_GAUGE_SET("bench_exec.hot_path_clones",
                     static_cast<double>(hot_clones));

  bench::WriteCsv("exec_latency", "query,nodes,tree_ns_per_tuple,"
                  "flat_ns_per_tuple,batch_ns_per_tuple", rows);
  bench::FinishBench();
  const bool ok = speedup >= 1.5 && batch_speedup >= 4.0 && hot_clones == 0 &&
                  checksum == 0.0 && batch_checksum == 0.0;
  return ok ? 0 : 1;
}
