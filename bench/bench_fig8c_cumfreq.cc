// Figure 8(c): cumulative frequency of performance gain over the Lab
// experiments -- for each gain level x, the fraction of queries where the
// algorithm's plan was at least x times cheaper than Naive on held-out test
// data. Run on the full-size lab dataset (no exhaustive needed).

#include <cstdio>

#include "bench_util.h"
#include "exec/metrics.h"
#include "lab_config.h"
#include "opt/greedy_plan.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "prob/dataset_estimator.h"

using namespace caqp;
using namespace caqp::bench;

int main(int argc, char** argv) {
  InitBench("fig8c_cumfreq", argc, argv);
  Banner("Figure 8(c): cumulative frequency of performance gain (Lab)");

  LabSetup lab = MakeFullLab();
  const Schema& schema = lab.train.schema();
  DatasetEstimator est(lab.train);
  PerAttributeCostModel cm(schema);

  LabQueryOptions qopts;
  qopts.num_queries = 95;
  const std::vector<Query> queries = GenerateLabQueries(
      lab.train, {lab.attrs.light, lab.attrs.temperature, lab.attrs.humidity},
      qopts);

  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  NaivePlanner naive(est, cm);
  SequentialPlanner corrseq(est, cm, optseq, "CorrSeq");
  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &optseq;
  gopts.max_splits = 5;
  GreedyPlanner h5(est, cm, gopts);
  gopts.max_splits = 10;
  GreedyPlanner h10(est, cm, gopts);

  std::printf("running %zu queries x 4 planners...\n", queries.size());
  const auto m_naive = RunWorkload(naive, queries, lab.train, lab.test, cm);
  const auto m_corr = RunWorkload(corrseq, queries, lab.train, lab.test, cm);
  const auto m_h5 = RunWorkload(h5, queries, lab.train, lab.test, cm);
  const auto m_h10 = RunWorkload(h10, queries, lab.train, lab.test, cm);

  std::vector<std::string> rows;
  for (const auto* ms : {&m_corr, &m_h5, &m_h10}) {
    const std::vector<double> gains = GainsVersus(m_naive, *ms);
    const GainStats stats = SummarizeGains(gains);
    std::printf("\n%s vs Naive: mean gain %.2fx, median %.2fx, best %.2fx, "
                "worst %.2fx\n",
                (*ms)[0].planner.c_str(), stats.mean, stats.median, stats.max,
                stats.min);
    std::printf("  gain >= x  (fraction of queries):\n");
    for (const auto& [x, frac] : CumulativeGainCurve(gains, 12)) {
      std::printf("    %6.2fx  %5.2f\n", x, frac);
      rows.push_back((*ms)[0].planner + "," + std::to_string(x) + "," +
                     std::to_string(frac));
    }
  }
  WriteCsv("fig8c_cumfreq", "planner,gain_threshold,fraction_at_least", rows);
  std::printf(
      "\nexpected shape: Heuristic curves dominate CorrSeq; a large\n"
      "fraction of queries gain >1x, with multi-x gains in the tail.\n");
  FinishBench();
  return 0;
}
