#include "bench_util.h"

#include <chrono>

#include "plan/plan_serde.h"

namespace caqp {
namespace bench {

std::vector<Measurement> RunWorkload(Planner& planner,
                                     const std::vector<Query>& queries,
                                     const Dataset& train, const Dataset& test,
                                     const AcquisitionCostModel& cost_model) {
  std::vector<Measurement> out;
  out.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Measurement m;
    m.planner = planner.Name();
    m.query_index = i;
    const auto t0 = std::chrono::steady_clock::now();
    const Plan plan = planner.BuildPlan(queries[i]);
    const auto t1 = std::chrono::steady_clock::now();
    m.plan_build_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    m.plan_splits = plan.NumSplits();
    m.plan_bytes = PlanSizeBytes(plan);
    m.train_cost =
        EmpiricalPlanCost(plan, train, queries[i], cost_model).mean_cost;
    const EmpiricalCostResult te =
        EmpiricalPlanCost(plan, test, queries[i], cost_model);
    m.test_cost = te.mean_cost;
    m.verdict_errors = te.verdict_errors;
    out.push_back(m);
  }
  return out;
}

double MeanTestCost(const std::vector<Measurement>& ms) {
  double total = 0;
  for (const Measurement& m : ms) total += m.test_cost;
  return ms.empty() ? 0.0 : total / ms.size();
}

double MeanTrainCost(const std::vector<Measurement>& ms) {
  double total = 0;
  for (const Measurement& m : ms) total += m.train_cost;
  return ms.empty() ? 0.0 : total / ms.size();
}

std::vector<double> GainsVersus(const std::vector<Measurement>& baseline,
                                const std::vector<Measurement>& alg,
                                bool use_test) {
  std::vector<double> gains;
  const size_t n = std::min(baseline.size(), alg.size());
  for (size_t i = 0; i < n; ++i) {
    const double b = use_test ? baseline[i].test_cost : baseline[i].train_cost;
    const double a = use_test ? alg[i].test_cost : alg[i].train_cost;
    if (a > 0) gains.push_back(b / a);
  }
  return gains;
}

void WriteCsv(const std::string& name, const std::string& header,
              const std::vector<std::string>& rows) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name + ".csv";
  std::ofstream out(path);
  out << header << "\n";
  for (const std::string& row : rows) out << row << "\n";
  std::printf("[wrote %s: %zu rows]\n", path.c_str(), rows.size());
}

void Banner(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace caqp
