#include "bench_util.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "plan/plan_serde.h"

namespace caqp {
namespace bench {

namespace {

// Structured-export state for this binary, armed by InitBench. Run
// fragments are serialized eagerly so no Schema/Dataset lifetimes leak
// into FinishBench.
struct RunLog {
  bool enabled = false;
  std::string bench_name;
  std::string json_path;
  std::vector<std::string> run_fragments;
};

RunLog& Log() {
  static RunLog log;
  return log;
}

std::string SerializeRun(const Measurement& m, const obs::PlannerStats& stats,
                         const AttributeProfile& profile,
                         const Schema& schema) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("planner").String(m.planner);
  w.Key("query_index").UInt(m.query_index);
  w.Key("train_cost").Double(m.train_cost);
  w.Key("test_cost").Double(m.test_cost);
  w.Key("plan_splits").UInt(m.plan_splits);
  w.Key("plan_bytes").UInt(m.plan_bytes);
  w.Key("verdict_errors").UInt(m.verdict_errors);
  w.Key("plan_build_seconds").Double(m.plan_build_seconds);
  w.Key("planner_stats");
  obs::WritePlannerStats(w, stats);
  w.Key("test_profile");
  obs::WriteAttributeProfile(w, profile, &schema);
  w.EndObject();
  return w.TakeString();
}

}  // namespace

void InitBench(const std::string& bench_name, int argc, char** argv) {
  RunLog& log = Log();
  log.bench_name = bench_name;
  log.json_path.clear();
  log.run_fragments.clear();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json-out") == 0 && i + 1 < argc) {
      log.json_path = argv[i + 1];
      ++i;
    } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
      log.json_path = arg + 11;
    }
  }
  if (log.json_path.empty()) {
    if (const char* env = std::getenv("CAQP_JSON_OUT")) log.json_path = env;
  }
  log.enabled = !log.json_path.empty();
}

bool JsonExportEnabled() { return Log().enabled; }

void FinishBench() {
  RunLog& log = Log();
  if (!log.enabled) return;
  std::string doc = "{\"bench\":\"" + obs::EscapeJson(log.bench_name) +
                    "\",\"runs\":[";
  for (size_t i = 0; i < log.run_fragments.size(); ++i) {
    if (i) doc += ',';
    doc += log.run_fragments[i];
  }
  doc += "],\"metrics\":";
  doc += obs::RegistryToJson(obs::DefaultRegistry());
  doc += "}\n";
  if (obs::WriteFileOrComplain(log.json_path, doc)) {
    std::printf("[wrote %s: %zu runs]\n", log.json_path.c_str(),
                log.run_fragments.size());
  }
  log.enabled = false;
}

std::vector<Measurement> RunWorkload(Planner& planner,
                                     const std::vector<Query>& queries,
                                     const Dataset& train, const Dataset& test,
                                     const AcquisitionCostModel& cost_model) {
  std::vector<Measurement> out;
  out.reserve(queries.size());
  const bool record = JsonExportEnabled();
  for (size_t i = 0; i < queries.size(); ++i) {
    Measurement m;
    m.planner = planner.Name();
    m.query_index = i;
    const auto t0 = std::chrono::steady_clock::now();
    const Plan plan = planner.BuildPlan(queries[i]);
    const auto t1 = std::chrono::steady_clock::now();
    m.plan_build_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    m.plan_splits = plan.NumSplits();
    m.plan_bytes = PlanSizeBytes(plan);
    m.train_cost =
        EmpiricalPlanCost(plan, train, queries[i], cost_model).mean_cost;
    AttributeProfile profile(test.schema().num_attributes());
    const EmpiricalCostResult te = EmpiricalPlanCost(
        plan, test, queries[i], cost_model, record ? &profile : nullptr);
    m.test_cost = te.mean_cost;
    m.verdict_errors = te.verdict_errors;
    if (record) {
      Log().run_fragments.push_back(SerializeRun(
          m, planner.planner_stats(), profile, test.schema()));
    }
    out.push_back(m);
  }
  return out;
}

double MeanTestCost(const std::vector<Measurement>& ms) {
  double total = 0;
  for (const Measurement& m : ms) total += m.test_cost;
  return ms.empty() ? 0.0 : total / ms.size();
}

double MeanTrainCost(const std::vector<Measurement>& ms) {
  double total = 0;
  for (const Measurement& m : ms) total += m.train_cost;
  return ms.empty() ? 0.0 : total / ms.size();
}

std::vector<double> GainsVersus(const std::vector<Measurement>& baseline,
                                const std::vector<Measurement>& alg,
                                bool use_test) {
  std::vector<double> gains;
  const size_t n = std::min(baseline.size(), alg.size());
  for (size_t i = 0; i < n; ++i) {
    const double b = use_test ? baseline[i].test_cost : baseline[i].train_cost;
    const double a = use_test ? alg[i].test_cost : alg[i].train_cost;
    if (a > 0) gains.push_back(b / a);
  }
  return gains;
}

void WriteCsv(const std::string& name, const std::string& header,
              const std::vector<std::string>& rows) {
  std::filesystem::create_directories("results");
  const std::string path = "results/" + name + ".csv";
  std::ofstream out(path);
  out << header << "\n";
  for (const std::string& row : rows) out << row << "\n";
  std::printf("[wrote %s: %zu rows]\n", path.c_str(), rows.size());
}

void Banner(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace caqp
