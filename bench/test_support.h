// Small data builders shared by the google-benchmark binaries.

#ifndef CAQP_BENCH_TEST_SUPPORT_H_
#define CAQP_BENCH_TEST_SUPPORT_H_

#include <string>

#include "common/rng.h"
#include "core/dataset.h"
#include "core/query.h"

namespace caqp {
namespace benchsupport {

/// n attributes of domain k; attribute 0 is cheap (cost 1) and every other
/// attribute tracks it (cost 100) with 25% noise.
inline Dataset MakeCorrelated(uint32_t n, uint32_t k, size_t rows,
                              uint64_t seed) {
  Schema schema;
  for (uint32_t a = 0; a < n; ++a) {
    schema.AddAttribute("x" + std::to_string(a), k, a == 0 ? 1.0 : 100.0);
  }
  Rng rng(seed);
  Dataset ds(schema);
  Tuple t(n);
  for (size_t r = 0; r < rows; ++r) {
    const auto base = static_cast<uint32_t>(rng.UniformInt(0, k - 1));
    t[0] = static_cast<Value>(base);
    for (uint32_t a = 1; a < n; ++a) {
      t[a] = static_cast<Value>(
          rng.Bernoulli(0.25) ? rng.UniformInt(0, k - 1) : base);
    }
    ds.Append(t);
  }
  return ds;
}

/// Conjunctive query over the last `m` (expensive) attributes, each
/// predicate covering the middle half of the domain.
inline Query MidRangeQuery(const Schema& schema, size_t m) {
  Conjunct preds;
  const size_t n = schema.num_attributes();
  for (size_t i = 0; i < m && i + 1 < n; ++i) {
    const AttrId a = static_cast<AttrId>(n - 1 - i);
    const uint32_t k = schema.domain_size(a);
    preds.emplace_back(a, static_cast<Value>(k / 4),
                       static_cast<Value>(3 * k / 4 - 1));
  }
  return Query::Conjunction(std::move(preds));
}

}  // namespace benchsupport
}  // namespace caqp

#endif  // CAQP_BENCH_TEST_SUPPORT_H_
