// Figure 1 (introduction): hour-of-day vs light at a single sensor. The
// paper's scatter plot shows light values confined to a narrow band given
// the hour, especially at night -- the correlation all later machinery
// exploits. We print per-hour light statistics (min / quartiles / max in
// discretized bins) from the Lab generator plus a quantitative band-width
// measure: the mean conditional standard deviation versus the marginal one.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "data/lab_gen.h"
#include "prob/dataset_estimator.h"

using namespace caqp;
using namespace caqp::bench;

int main(int argc, char** argv) {
  InitBench("fig1_scatter", argc, argv);
  Banner("Figure 1: hour of day vs light (band structure)");

  LabDataOptions opts;
  opts.readings = 50000;
  const Dataset ds = GenerateLabData(opts);
  const LabAttrs attrs = ResolveLabAttrs(ds.schema());
  DatasetEstimator est(ds);
  const RangeVec root = ds.schema().FullRanges();

  const double sd_marginal = est.Marginal(root, attrs.light).StdDev();

  std::printf("\n%5s %7s %5s %5s %5s %5s %5s %8s\n", "hour", "n", "min",
              "p25", "p50", "p75", "max", "stddev");
  std::vector<std::string> rows;
  double weighted_sd = 0;
  for (Value h = 0; h < 24; ++h) {
    RangeVec cond = root;
    cond[attrs.hour] = ValueRange{h, h};
    const Histogram hist = est.Marginal(cond, attrs.light);
    if (hist.total() <= 0) continue;
    // Quantiles over the discretized light bins.
    auto quantile = [&](double q) -> Value {
      const double target = q * hist.total();
      double acc = 0;
      for (Value v = 0; v < hist.domain(); ++v) {
        acc += hist.Count(v);
        if (acc >= target) return v;
      }
      return static_cast<Value>(hist.domain() - 1);
    };
    Value lo = 0, hi = 0;
    for (Value v = 0; v < hist.domain(); ++v) {
      if (hist.Count(v) > 0) {
        lo = v;
        break;
      }
    }
    for (Value v = hist.domain(); v-- > 0;) {
      if (hist.Count(v) > 0) {
        hi = v;
        break;
      }
    }
    const double sd = hist.StdDev();
    weighted_sd += hist.total() / ds.num_rows() * sd;
    std::printf("%5u %7.0f %5u %5u %5u %5u %5u %8.2f\n",
                static_cast<unsigned>(h), hist.total(),
                static_cast<unsigned>(lo), static_cast<unsigned>(quantile(0.25)),
                static_cast<unsigned>(quantile(0.5)),
                static_cast<unsigned>(quantile(0.75)),
                static_cast<unsigned>(hi), sd);
    rows.push_back(std::to_string(h) + "," + std::to_string(quantile(0.25)) +
                   "," + std::to_string(quantile(0.5)) + "," +
                   std::to_string(quantile(0.75)) + "," + std::to_string(sd));
  }
  std::printf("\nlight stddev: marginal %.2f bins, mean conditional-on-hour "
              "%.2f bins (%.0f%% narrower)\n",
              sd_marginal, weighted_sd,
              100.0 * (1.0 - weighted_sd / sd_marginal));
  std::printf("expected shape: tight night bands (hours 0-5, 20-23), wide "
              "daytime spread -- Figure 1's banding.\n");
  WriteCsv("fig1_scatter", "hour,p25,p50,p75,stddev", rows);
  FinishBench();
  return 0;
}
