// Section 6.4 scalability study, as google-benchmark parameter sweeps. The
// paper's claims:
//  * the heuristic scales linearly in dataset size and domain size, and
//    exponentially (base 2, via OptSeq) in the number of query predicates --
//    polynomially when GreedySeq is the base solver;
//  * the exhaustive algorithm is linear in dataset size, polynomial in the
//    domain size, and exponential in the number of attributes (base = the
//    domain size).

#include <benchmark/benchmark.h>

#include "data/synthetic_gen.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/optseq.h"
#include "prob/dataset_estimator.h"
#include "test_support.h"

using namespace caqp;

namespace {

// ---------------------------------------------------------------- Heuristic

void BM_HeuristicVsDatasetSize(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const Dataset ds = benchsupport::MakeCorrelated(6, 8, rows, 1);
  const Query q = benchsupport::MidRangeQuery(ds.schema(), 3);
  PerAttributeCostModel cm(ds.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(ds.schema());
  GreedySeqSolver solver;
  for (auto _ : state) {
    DatasetEstimator est(ds);
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &solver;
    opts.max_splits = 4;
    GreedyPlanner planner(est, cm, opts);
    benchmark::DoNotOptimize(planner.BuildPlan(q));
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_HeuristicVsDatasetSize)
    ->RangeMultiplier(2)
    ->Range(2000, 32000)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);

void BM_HeuristicVsDomainSize(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const Dataset ds = benchsupport::MakeCorrelated(5, k, 8000, 2);
  const Query q = benchsupport::MidRangeQuery(ds.schema(), 3);
  PerAttributeCostModel cm(ds.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(ds.schema());
  GreedySeqSolver solver;
  for (auto _ : state) {
    DatasetEstimator est(ds);
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &solver;
    opts.max_splits = 4;
    GreedyPlanner planner(est, cm, opts);
    benchmark::DoNotOptimize(planner.BuildPlan(q));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_HeuristicVsDomainSize)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);

void BM_HeuristicVsPredicates_OptSeq(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  SyntheticDataOptions opts;
  opts.n = 2 * m;  // one cheap witness per expensive predicate
  opts.gamma = 1;
  opts.sel = 0.6;
  opts.tuples = 4000;
  const Dataset ds = GenerateSyntheticData(opts);
  const Query q = SyntheticAllExpensiveQuery(ds.schema());
  PerAttributeCostModel cm(ds.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(ds.schema());
  OptSeqSolver solver;  // exponential in m
  for (auto _ : state) {
    DatasetEstimator est(ds);
    GreedyPlanner::Options gopts;
    gopts.split_points = &splits;
    gopts.seq_solver = &solver;
    gopts.max_splits = 3;
    GreedyPlanner planner(est, cm, gopts);
    benchmark::DoNotOptimize(planner.BuildPlan(q));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_HeuristicVsPredicates_OptSeq)
    ->DenseRange(4, 14, 2)
    ->Complexity([](benchmark::IterationCount n) {
      return static_cast<double>(n) * static_cast<double>(1ll << n);
    })
    ->Unit(benchmark::kMillisecond);

void BM_HeuristicVsPredicates_GreedySeq(benchmark::State& state) {
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  SyntheticDataOptions opts;
  opts.n = 2 * m;
  opts.gamma = 1;
  opts.sel = 0.6;
  opts.tuples = 4000;
  const Dataset ds = GenerateSyntheticData(opts);
  const Query q = SyntheticAllExpensiveQuery(ds.schema());
  PerAttributeCostModel cm(ds.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(ds.schema());
  GreedySeqSolver solver;  // polynomial in m
  for (auto _ : state) {
    DatasetEstimator est(ds);
    GreedyPlanner::Options gopts;
    gopts.split_points = &splits;
    gopts.seq_solver = &solver;
    gopts.max_splits = 3;
    GreedyPlanner planner(est, cm, gopts);
    benchmark::DoNotOptimize(planner.BuildPlan(q));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_HeuristicVsPredicates_GreedySeq)
    ->DenseRange(4, 20, 4)
    ->Complexity(benchmark::oNSquared)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------- Exhaustive

void BM_ExhaustiveVsDomainSize(benchmark::State& state) {
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  const Dataset ds = benchsupport::MakeCorrelated(3, k, 4000, 3);
  const Query q = benchsupport::MidRangeQuery(ds.schema(), 2);
  PerAttributeCostModel cm(ds.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(ds.schema());
  for (auto _ : state) {
    DatasetEstimator est(ds);
    ExhaustivePlanner::Options opts;
    opts.split_points = &splits;
    ExhaustivePlanner planner(est, cm, opts);
    benchmark::DoNotOptimize(planner.BuildPlan(q));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_ExhaustiveVsDomainSize)
    ->DenseRange(2, 10, 2)
    ->Complexity(benchmark::oNCubed)
    ->Unit(benchmark::kMillisecond);

void BM_ExhaustiveVsNumAttributes(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const Dataset ds = benchsupport::MakeCorrelated(n, 4, 4000, 4);
  const Query q = benchsupport::MidRangeQuery(ds.schema(), 2);
  PerAttributeCostModel cm(ds.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(ds.schema());
  for (auto _ : state) {
    DatasetEstimator est(ds);
    ExhaustivePlanner::Options opts;
    opts.split_points = &splits;
    ExhaustivePlanner planner(est, cm, opts);
    benchmark::DoNotOptimize(planner.BuildPlan(q));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ExhaustiveVsNumAttributes)
    ->DenseRange(2, 6, 1)
    ->Complexity([](benchmark::IterationCount n) {
      // Subproblem count ~ (K(K+1)/2)^n with K=4.
      double c = 1;
      for (int64_t i = 0; i < n; ++i) c *= 10.0;
      return c;
    })
    ->Unit(benchmark::kMillisecond);

void BM_ExhaustiveVsDatasetSize(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const Dataset ds = benchsupport::MakeCorrelated(4, 4, rows, 5);
  const Query q = benchsupport::MidRangeQuery(ds.schema(), 2);
  PerAttributeCostModel cm(ds.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(ds.schema());
  for (auto _ : state) {
    DatasetEstimator est(ds);
    ExhaustivePlanner::Options opts;
    opts.split_points = &splits;
    ExhaustivePlanner planner(est, cm, opts);
    benchmark::DoNotOptimize(planner.BuildPlan(q));
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_ExhaustiveVsDatasetSize)
    ->RangeMultiplier(2)
    ->Range(2000, 32000)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);

}  // namespace
