// Figure 8(b): the impact of restricting the Split Point Selection Factor
// (Section 4.3) on the Exhaustive planner, compared against Heuristic-5 run
// with a large SPSF. The paper's finding: Exhaustive with a small SPSF is
// substantially WORSE than Heuristic-5 with a large SPSF -- over-restricting
// split points obscures the correlations the planner needs.
//
// Output: mean and worst train-cost of Exhaustive at several SPSF settings,
// normalized to Heuristic-5 @ full SPSF.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "lab_config.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/optseq.h"
#include "prob/dataset_estimator.h"

using namespace caqp;
using namespace caqp::bench;

int main(int argc, char** argv) {
  InitBench("fig8b_spsf", argc, argv);
  Banner("Figure 8(b): Exhaustive at shrinking SPSF vs Heuristic-5");

  LabSetup lab = MakeReducedLab();
  const Schema& schema = lab.train.schema();
  DatasetEstimator est(lab.train);
  PerAttributeCostModel cm(schema);

  LabQueryOptions qopts;
  qopts.num_queries = 30;
  const std::vector<Query> queries = GenerateLabQueries(
      lab.train, {lab.attrs.light, lab.attrs.temperature, lab.attrs.humidity},
      qopts);

  // Reference: Heuristic-5 with the full split-point grid (the analogue of
  // the paper's SPSF 1e14 on its larger domains).
  const SplitPointSet full = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  GreedyPlanner::Options gopts;
  gopts.split_points = &full;
  gopts.seq_solver = &optseq;
  gopts.max_splits = 5;
  GreedyPlanner h5(est, cm, gopts);
  const auto m_h5 = RunWorkload(h5, queries, lab.train, lab.test, cm);

  std::printf("\n%-26s %12s %12s\n", "planner (log10 SPSF)", "mean norm",
              "worst norm");
  std::printf("%-26s %12.3f %12.3f   (reference)\n", "Heuristic-5 (full)",
              1.0, 1.0);

  std::vector<std::string> rows;
  rows.push_back("Heuristic-5 full," + std::to_string(full.Log10Spsf()) +
                 ",1.0,1.0");

  for (const double log10_spsf : {0.5, 1.0, 2.0, 3.0}) {
    const SplitPointSet restricted =
        SplitPointSet::FromLog10Spsf(schema, log10_spsf);
    ExhaustivePlanner::Options eopts;
    eopts.split_points = &restricted;
    ExhaustivePlanner exhaustive(est, cm, eopts);
    const auto m_ex = RunWorkload(exhaustive, queries, lab.train, lab.test, cm);

    double norm_sum = 0, norm_max = 0;
    for (size_t i = 0; i < m_ex.size(); ++i) {
      const double norm =
          m_h5[i].train_cost > 0 ? m_ex[i].train_cost / m_h5[i].train_cost
                                 : 1.0;
      norm_sum += norm;
      norm_max = std::max(norm_max, norm);
    }
    char label[64];
    std::snprintf(label, sizeof(label), "Exhaustive (%.1f->%.1f)", log10_spsf,
                  restricted.Log10Spsf());
    std::printf("%-26s %12.3f %12.3f\n", label, norm_sum / m_ex.size(),
                norm_max);
    rows.push_back("Exhaustive," + std::to_string(restricted.Log10Spsf()) +
                   "," + std::to_string(norm_sum / m_ex.size()) + "," +
                   std::to_string(norm_max));
  }
  WriteCsv("fig8b_spsf", "planner,log10_spsf,mean_norm_vs_h5,worst_norm",
           rows);
  std::printf(
      "\nexpected shape: small SPSF -> Exhaustive worse than Heuristic-5;\n"
      "large SPSF -> Exhaustive matches or beats it (norm <= 1).\n");
  FinishBench();
  return 0;
}
