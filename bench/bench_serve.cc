// Serving-layer throughput: plan cache + single-flight vs plan-per-query.
//
// Replays the same repeated-query workload (distinct queries « requests,
// the regime a deployed basestation sees: a handful of standing monitoring
// queries asked over and over) through two QueryService configurations:
//
//   cached      sharded plan cache + single-flight planning
//   per-query   cache capacity 0 — every request runs BuildPlan itself
//
// The acceptance bar is cached >= 5x per-query throughput: amortizing the
// planner (milliseconds of estimator probing per build) over cache hits
// (microseconds of tree traversal) is the whole point of caqp::serve.
// Also measures a cold burst of one query from many clients to show
// single-flight collapses the thundering herd to one build.
//
// --json-out <path> writes the obs metrics registry (bench_util.h).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/query_signature.h"
#include "data/synthetic_gen.h"
#include "obs/registry.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "prob/dataset_estimator.h"
#include "serve/query_service.h"

using namespace caqp;

namespace {

constexpr size_t kWorkers = 4;
constexpr size_t kClients = 8;
constexpr size_t kDistinct = 12;
constexpr size_t kRequests = 4000;
constexpr uint64_t kSeed = 20050405;

struct Scenario {
  Dataset data;
  Dataset train;
  Dataset test;
  std::unique_ptr<PerAttributeCostModel> cost_model;
  std::unique_ptr<SplitPointSet> splits;
  std::vector<Query> workload;
};

Scenario MakeScenario() {
  SyntheticDataOptions dopts;
  dopts.n = 10;
  dopts.gamma = 4;
  dopts.sel = 0.6;
  dopts.tuples = 20000;
  dopts.seed = kSeed;
  Scenario s{GenerateSyntheticData(dopts), Dataset(Schema{}),
             Dataset(Schema{}), nullptr, nullptr, {}};
  auto [train, test] = s.data.SplitFraction(0.6);
  s.train = std::move(train);
  s.test = std::move(test);
  const Schema& schema = s.data.schema();
  s.cost_model = std::make_unique<PerAttributeCostModel>(schema);
  s.splits = std::make_unique<SplitPointSet>(SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes())));

  std::mt19937_64 rng(kSeed);
  std::vector<uint64_t> sigs;
  const size_t n = schema.num_attributes();
  while (s.workload.size() < kDistinct) {
    std::vector<AttrId> attrs(n);
    for (size_t i = 0; i < n; ++i) attrs[i] = static_cast<AttrId>(i);
    std::shuffle(attrs.begin(), attrs.end(), rng);
    const size_t arity = 3 + rng() % (n - 2);
    Conjunct preds;
    for (size_t i = 0; i < arity; ++i) {
      const Value v =
          static_cast<Value>(rng() % schema.domain_size(attrs[i]));
      preds.emplace_back(attrs[i], v, v, /*negated=*/rng() % 4 == 0);
    }
    Query q = Query::Conjunction(std::move(preds));
    const uint64_t sig = QuerySignature(q);
    if (std::find(sigs.begin(), sigs.end(), sig) != sigs.end()) continue;
    sigs.push_back(sig);
    s.workload.push_back(std::move(q));
  }
  return s;
}

class BenchPlanBuilder : public serve::PlanBuilder {
 public:
  explicit BenchPlanBuilder(const Scenario& s) : estimator_(s.train) {
    GreedyPlanner::Options gopts;
    gopts.split_points = s.splits.get();
    gopts.seq_solver = &greedyseq_;
    gopts.max_splits = 5;
    planner_ = std::make_unique<GreedyPlanner>(estimator_, *s.cost_model,
                                               gopts);
  }
  Plan Build(const Query& query) override {
    return planner_->BuildPlan(query);
  }
  uint64_t ConfigFingerprint() const override { return 0x6265'6e63'68ULL; }

 private:
  DatasetEstimator estimator_;
  GreedySeqSolver greedyseq_;
  std::unique_ptr<GreedyPlanner> planner_;
};

struct ReplayResult {
  double elapsed_seconds = 0.0;
  double rps = 0.0;
  size_t planned = 0;  ///< requests that ran BuildPlan
  serve::ShardedPlanCache::Stats cache;
};

ReplayResult Replay(const Scenario& s, size_t cache_capacity) {
  serve::QueryService::Options sopts;
  sopts.num_workers = kWorkers;
  sopts.cache_capacity = cache_capacity;
  serve::QueryService service(
      s.data.schema(), *s.cost_model,
      [&] { return std::make_unique<BenchPlanBuilder>(s); }, sopts);

  std::vector<std::thread> clients;
  std::vector<size_t> planned(kClients, 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(kSeed ^ (0xc1u + c));
      const size_t quota =
          kRequests / kClients + (c < kRequests % kClients);
      for (size_t r = 0; r < quota; ++r) {
        Conjunct preds = s.workload[rng() % s.workload.size()].predicates();
        std::shuffle(preds.begin(), preds.end(), rng);
        Tuple tuple =
            s.test.GetTuple(static_cast<RowId>(rng() % s.test.num_rows()));
        planned[c] += service
                          .SubmitAndWait(Query::Conjunction(std::move(preds)),
                                         std::move(tuple))
                          .planned;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ReplayResult r;
  r.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.rps = static_cast<double>(kRequests) / r.elapsed_seconds;
  for (size_t c = 0; c < kClients; ++c) r.planned += planned[c];
  r.cache = service.cache().stats();
  return r;
}

/// Cold burst: every client submits the SAME query at once. With
/// single-flight exactly one request plans; the rest share the result.
size_t ColdBurstBuilds(const Scenario& s) {
  serve::QueryService::Options sopts;
  sopts.num_workers = kWorkers;
  serve::QueryService service(
      s.data.schema(), *s.cost_model,
      [&] { return std::make_unique<BenchPlanBuilder>(s); }, sopts);
  std::vector<std::future<serve::QueryService::Response>> futures;
  const Tuple tuple = s.test.GetTuple(0);
  for (size_t i = 0; i < 2 * kWorkers; ++i) {
    futures.push_back(service.Submit(s.workload[0], tuple));
  }
  size_t builds = 0;
  for (auto& f : futures) builds += f.get().planned;
  return builds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("bench_serve", argc, argv);
  bench::Banner("serving layer: plan cache + single-flight vs plan-per-query");

  Scenario s = MakeScenario();
  std::printf("%zu distinct queries, %zu requests, %zu clients, %zu workers\n",
              kDistinct, kRequests, kClients, kWorkers);

  // Warm-up (and JIT the page cache / frequency) with a short cached run.
  Replay(s, /*cache_capacity=*/1024);

  const ReplayResult cached = Replay(s, /*cache_capacity=*/1024);
  const ReplayResult per_query = Replay(s, /*cache_capacity=*/0);
  const size_t burst_builds = ColdBurstBuilds(s);

  std::printf("\n%-12s %10s %12s %10s\n", "config", "elapsed", "throughput",
              "plans");
  std::printf("%-12s %9.3fs %9.0f r/s %10zu\n", "cached",
              cached.elapsed_seconds, cached.rps, cached.planned);
  std::printf("%-12s %9.3fs %9.0f r/s %10zu\n", "per-query",
              per_query.elapsed_seconds, per_query.rps, per_query.planned);

  const double speedup = cached.rps / per_query.rps;
  std::printf("\nspeedup: %.1fx  (bar: >= 5x)\n", speedup);
  std::printf("cold burst of %zu identical requests ran %zu builds "
              "(bar: 1)\n", 2 * kWorkers, burst_builds);

  CAQP_OBS_GAUGE_SET("bench_serve.cached_rps", cached.rps);
  CAQP_OBS_GAUGE_SET("bench_serve.per_query_rps", per_query.rps);
  CAQP_OBS_GAUGE_SET("bench_serve.speedup", speedup);
  CAQP_OBS_GAUGE_SET("bench_serve.cold_burst_builds",
                     static_cast<double>(burst_builds));

  bench::WriteCsv("serve_throughput", "config,elapsed_s,rps,plans",
                  {"cached," + std::to_string(cached.elapsed_seconds) + "," +
                       std::to_string(cached.rps) + "," +
                       std::to_string(cached.planned),
                   "per-query," + std::to_string(per_query.elapsed_seconds) +
                       "," + std::to_string(per_query.rps) + "," +
                       std::to_string(per_query.planned)});
  bench::FinishBench();
  return speedup >= 5.0 && burst_builds == 1 ? 0 : 1;
}
