// Distributed serving tier scaling: 4-shard scatter-gather vs 1 shard.
//
// Replays a repeated-query workload (distinct queries « requests — the
// standing-monitoring-query regime) through two Coordinator configurations
// over the same dataset:
//
//   single   1 executor shard — all row work serialized on one thread
//   sharded  4 executor shards (hash partition) — row work fanned out
//
// Both runs take the cached path (plans are warmed first), so the measured
// difference is the scatter-gather execution itself: per-query row work
// dominates, and partitioning it across shard threads should scale nearly
// linearly. The acceptance bar is sharded >= 2x single-shard throughput —
// deliberately below the ideal 4x to absorb merge overhead and CI-runner
// noise, but high enough that a serialization bug (or accidental
// coordinator-side row loop) fails the build. The bar is only enforced
// when the machine has >= 4 hardware threads: shard parallelism cannot
// beat wall clock on fewer cores, so constrained machines report the
// numbers without failing (merge equivalence is always enforced).
//
// Global obs is disabled during the timed loops: the per-row executor
// macros would funnel every shard thread through the shared default
// registry and measure lock contention instead of scatter-gather. The
// coordinator's own ShardedRegistry metrics (prefetched refs, per-shard
// slots) stay live — they are part of the tier under test.
//
// --json-out <path> writes the obs metrics registry (bench_util.h).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/query_signature.h"
#include "data/synthetic_gen.h"
#include "dist/coordinator.h"
#include "exec/batch_executor.h"
#include "exec/executor.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

namespace {

// The dataset is sized so per-query row work (~milliseconds over 96k rows)
// dominates the fixed scatter-gather cost per query (thread handoffs,
// plan-cache lookup, merge — tens of microseconds); clients exceed the
// shard count so shard threads stay saturated rather than latency-bound.
constexpr size_t kClients = 8;
constexpr size_t kDistinct = 10;
constexpr size_t kRequests = 160;
constexpr size_t kTuples = 96000;
constexpr uint64_t kSeed = 20050407;

struct Scenario {
  Dataset data;
  Dataset train;
  Dataset test;
  std::unique_ptr<PerAttributeCostModel> cost_model;
  std::unique_ptr<SplitPointSet> splits;
  std::vector<Query> workload;
};

Scenario MakeScenario() {
  SyntheticDataOptions dopts;
  dopts.n = 10;
  dopts.gamma = 4;
  dopts.sel = 0.6;
  dopts.tuples = kTuples;
  dopts.seed = kSeed;
  Scenario s{GenerateSyntheticData(dopts), Dataset(Schema{}),
             Dataset(Schema{}), nullptr, nullptr, {}};
  auto [train, test] = s.data.SplitFraction(0.4);
  s.train = std::move(train);
  s.test = std::move(test);
  const Schema& schema = s.data.schema();
  s.cost_model = std::make_unique<PerAttributeCostModel>(schema);
  s.splits = std::make_unique<SplitPointSet>(SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes())));

  std::mt19937_64 rng(kSeed);
  std::vector<uint64_t> sigs;
  const size_t n = schema.num_attributes();
  while (s.workload.size() < kDistinct) {
    std::vector<AttrId> attrs(n);
    for (size_t i = 0; i < n; ++i) attrs[i] = static_cast<AttrId>(i);
    std::shuffle(attrs.begin(), attrs.end(), rng);
    const size_t arity = 3 + rng() % (n - 2);
    Conjunct preds;
    for (size_t i = 0; i < arity; ++i) {
      const Value v =
          static_cast<Value>(rng() % schema.domain_size(attrs[i]));
      preds.emplace_back(attrs[i], v, v, /*negated=*/rng() % 4 == 0);
    }
    Query q = Query::Conjunction(std::move(preds));
    const uint64_t sig = QuerySignature(q);
    if (std::find(sigs.begin(), sigs.end(), sig) != sigs.end()) continue;
    sigs.push_back(sig);
    s.workload.push_back(std::move(q));
  }
  return s;
}

class BenchPlanBuilder : public serve::PlanBuilder {
 public:
  explicit BenchPlanBuilder(const Scenario& s) : estimator_(s.train) {
    GreedyPlanner::Options gopts;
    gopts.split_points = s.splits.get();
    gopts.seq_solver = &greedyseq_;
    gopts.max_splits = 5;
    planner_ = std::make_unique<GreedyPlanner>(estimator_, *s.cost_model,
                                               gopts);
  }
  Plan Build(const Query& query) override {
    return planner_->BuildPlan(query);
  }
  uint64_t ConfigFingerprint() const override { return 0x6469'7374ULL; }

 private:
  DatasetEstimator estimator_;
  GreedySeqSolver greedyseq_;
  std::unique_ptr<GreedyPlanner> planner_;
};

struct ReplayResult {
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  uint64_t degraded = 0;
};

/// Warms every workload plan, then replays kRequests cached-path queries
/// from kClients concurrent client threads.
ReplayResult Replay(const Scenario& s, dist::Coordinator& coord) {
  for (const Query& q : s.workload) (void)coord.Execute(q);

  const bool obs_was_enabled = obs::Enabled();
  obs::SetEnabled(false);
  std::vector<std::thread> clients;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(kSeed ^ (0xd1u + c));
      const size_t quota =
          kRequests / kClients + (c < kRequests % kClients);
      for (size_t r = 0; r < quota; ++r) {
        Conjunct preds = s.workload[rng() % s.workload.size()].predicates();
        std::shuffle(preds.begin(), preds.end(), rng);
        (void)coord.Execute(Query::Conjunction(std::move(preds)));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ReplayResult r;
  r.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  obs::SetEnabled(obs_was_enabled);
  r.qps = static_cast<double>(kRequests) / r.elapsed_seconds;
  r.degraded = coord.Report().degraded_queries;
  return r;
}

dist::Coordinator MakeCoordinator(const Scenario& s, size_t shards) {
  dist::Coordinator::Options opts;
  opts.partition = dist::PartitionSpec::Hash(shards);
  return dist::Coordinator(
      s.data, *s.cost_model,
      [&s] { return std::make_unique<BenchPlanBuilder>(s); }, opts);
}

/// Fault-free distributed answers must agree with a single-process columnar
/// batch run of the same plan — a wrong-but-fast tier scores zero.
bool VerdictsMatchBatch(const Scenario& s, dist::Coordinator& coord) {
  for (const Query& q : s.workload) {
    const dist::Coordinator::Response resp = coord.Execute(q);
    if (!resp.ok() || resp.degraded() || resp.plan == nullptr) return false;
    std::vector<RowId> all(s.data.num_rows());
    for (RowId r = 0; r < s.data.num_rows(); ++r) all[r] = r;
    std::vector<uint8_t> verdicts;
    ExecuteBatchColumnar(*resp.plan, s.data, all, *s.cost_model, &verdicts);
    for (RowId r = 0; r < s.data.num_rows(); ++r) {
      if ((resp.row_verdicts[r] == Truth::kTrue) != (verdicts[r] != 0)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("bench_dist", argc, argv);
  bench::Banner("distributed tier: 4-shard scatter-gather vs 1 shard");

  Scenario s = MakeScenario();
  std::printf("%zu tuples, %zu distinct queries, %zu requests, %zu clients\n",
              s.data.num_rows(), kDistinct, kRequests, kClients);

  dist::Coordinator single = MakeCoordinator(s, 1);
  dist::Coordinator sharded = MakeCoordinator(s, 4);

  const bool correct = VerdictsMatchBatch(s, sharded);
  std::printf("merge equivalence vs columnar batch: %s\n",
              correct ? "ok" : "FAILED");

  // Warm-up run per config, then the timed runs.
  Replay(s, single);
  Replay(s, sharded);
  const ReplayResult one = Replay(s, single);
  const ReplayResult four = Replay(s, sharded);

  std::printf("\n%-10s %10s %12s %10s\n", "config", "elapsed", "throughput",
              "degraded");
  std::printf("%-10s %9.3fs %9.0f q/s %10llu\n", "1-shard",
              one.elapsed_seconds, one.qps,
              static_cast<unsigned long long>(one.degraded));
  std::printf("%-10s %9.3fs %9.0f q/s %10llu\n", "4-shard",
              four.elapsed_seconds, four.qps,
              static_cast<unsigned long long>(four.degraded));

  const double speedup = four.qps / one.qps;
  const unsigned cores = std::thread::hardware_concurrency();
  const bool bar_enforced = cores >= 4;
  if (bar_enforced) {
    std::printf("\nscaling: %.2fx  (bar: >= 2x, %u hardware threads)\n",
                speedup, cores);
  } else {
    std::printf(
        "\nscaling: %.2fx  (bar: >= 2x NOT ENFORCED — only %u hardware "
        "threads; shard parallelism cannot beat wall clock here)\n",
        speedup, cores);
  }

  CAQP_OBS_GAUGE_SET("bench_dist.single_shard_rps", one.qps);
  CAQP_OBS_GAUGE_SET("bench_dist.four_shard_rps", four.qps);
  CAQP_OBS_GAUGE_SET("bench_dist.speedup", speedup);
  CAQP_OBS_GAUGE_SET("bench_dist.merge_equivalent", correct ? 1.0 : 0.0);
  CAQP_OBS_GAUGE_SET("bench_dist.hardware_threads",
                     static_cast<double>(cores));
  CAQP_OBS_GAUGE_SET("bench_dist.bar_enforced", bar_enforced ? 1.0 : 0.0);

  bench::WriteCsv("dist_scaling", "config,elapsed_s,qps,degraded",
                  {"1-shard," + std::to_string(one.elapsed_seconds) + "," +
                       std::to_string(one.qps) + "," +
                       std::to_string(one.degraded),
                   "4-shard," + std::to_string(four.elapsed_seconds) + "," +
                       std::to_string(four.qps) + "," +
                       std::to_string(four.degraded)});
  bench::FinishBench();
  if (!correct) return 1;
  return !bar_enforced || speedup >= 2.0 ? 0 : 1;
}
