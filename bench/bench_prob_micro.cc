// Section 5 microbenchmarks: the probability-computation machinery.
//
//  * Scope-stack row selection vs re-filtering from the root (the paper's
//    per-subproblem dataset indices).
//  * One-pass per-value predicate joints (the incremental Eq. (7) sweep)
//    vs re-counting each candidate split from scratch.
//  * Chow-Liu evidence inference vs direct counting for one conditional.

#include <benchmark/benchmark.h>

#include "prob/chow_liu.h"
#include "prob/dataset_estimator.h"
#include "test_support.h"

using namespace caqp;

namespace {

const Dataset& SharedData() {
  static const Dataset ds = benchsupport::MakeCorrelated(8, 16, 100000, 7);
  return ds;
}

RangeVec NarrowedRanges(const Schema& schema) {
  RangeVec ranges = schema.FullRanges();
  ranges[0] = ValueRange{4, 11};
  ranges[2] = ValueRange{2, 13};
  return ranges;
}

void BM_MarginalWithScopeStack(benchmark::State& state) {
  const Dataset& ds = SharedData();
  DatasetEstimator est(ds);
  const RangeVec ranges = NarrowedRanges(ds.schema());
  est.PushScope(ranges);  // planner-style: filter once...
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.Marginal(ranges, 5));  // ...query many times
  }
  est.PopScope();
}
BENCHMARK(BM_MarginalWithScopeStack)->Unit(benchmark::kMicrosecond);

void BM_MarginalColdEachTime(benchmark::State& state) {
  const Dataset& ds = SharedData();
  const RangeVec ranges = NarrowedRanges(ds.schema());
  for (auto _ : state) {
    DatasetEstimator est(ds);  // no reusable scope: refilter from the root
    benchmark::DoNotOptimize(est.Marginal(ranges, 5));
  }
}
BENCHMARK(BM_MarginalColdEachTime)->Unit(benchmark::kMicrosecond);

void BM_PerValueMasksOnePass(benchmark::State& state) {
  const Dataset& ds = SharedData();
  DatasetEstimator est(ds);
  const RangeVec ranges = ds.schema().FullRanges();
  const std::vector<Predicate> preds = {Predicate(6, 4, 11),
                                        Predicate(7, 4, 11)};
  for (auto _ : state) {
    // One pass yields the "< x" side of every candidate split of attr 0.
    benchmark::DoNotOptimize(est.PerValuePredicateMasks(ranges, 0, preds));
  }
}
BENCHMARK(BM_PerValueMasksOnePass)->Unit(benchmark::kMicrosecond);

void BM_PerCandidateMasksRecount(benchmark::State& state) {
  const Dataset& ds = SharedData();
  DatasetEstimator est(ds);
  const RangeVec ranges = ds.schema().FullRanges();
  const std::vector<Predicate> preds = {Predicate(6, 4, 11),
                                        Predicate(7, 4, 11)};
  const uint32_t k = ds.schema().domain_size(0);
  for (auto _ : state) {
    // The naive alternative: one full recount per candidate split point.
    for (Value x = 1; x < k; ++x) {
      const RangeVec lt = Refined(ranges, 0, ValueRange{0, static_cast<Value>(x - 1)});
      benchmark::DoNotOptimize(est.PredicateMasks(lt, preds));
    }
  }
}
BENCHMARK(BM_PerCandidateMasksRecount)->Unit(benchmark::kMicrosecond);

void BM_ChowLiuFit(benchmark::State& state) {
  const Dataset& ds = SharedData();
  for (auto _ : state) {
    ChowLiuEstimator est(ds);
    benchmark::DoNotOptimize(&est);
  }
}
BENCHMARK(BM_ChowLiuFit)->Unit(benchmark::kMillisecond);

void BM_ChowLiuConditional(benchmark::State& state) {
  const Dataset& ds = SharedData();
  ChowLiuEstimator est(ds);
  const RangeVec ranges = NarrowedRanges(ds.schema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.Marginal(ranges, 5));
  }
}
BENCHMARK(BM_ChowLiuConditional)->Unit(benchmark::kMicrosecond);

void BM_CountingConditional(benchmark::State& state) {
  const Dataset& ds = SharedData();
  DatasetEstimator est(ds);
  const RangeVec ranges = NarrowedRanges(ds.schema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.Marginal(ranges, 5));
  }
}
BENCHMARK(BM_CountingConditional)->Unit(benchmark::kMicrosecond);

}  // namespace
