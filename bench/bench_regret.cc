// Robust-planning bar: minmax-regret plans vs point-estimate plans over
// uncertainty boxes (opt/uncertainty.h, opt/regret.h).
//
// A 3-attribute conjunctive workload (equal acquisition costs, pass rates
// 0.1 / 0.5 / 0.9) is planned by the Exhaustive point planner, the Greedy
// point planner, and the RegretPlanner, then every plan is priced at the
// corner scenarios of four uncertainty boxes:
//
//   point        the degenerate box — regret must reproduce the Exhaustive
//                plan bit-identically (serialized bytes compared)
//   uniform      symmetric +-0.15 pass-probability shift on every attribute
//   drift        a directional calibration-style box: the selective
//                attribute may have drifted non-selective and vice versa
//                (what DriftPolicy's widen mode installs after a regime
//                shift)
//   fault        the cheap-to-love attribute may develop up to a 90%
//                transient failure rate (PR 3 fault profiles: cost
//                multiplier 1/(1-f) up to 10x)
//
// Per (box, planner): worst-case and mean regret over the box's corners,
// where regret at a scenario is the plan's cost minus the best cost any
// reference candidate (RegretCandidatePlans + the point plans) achieves
// there.
//
// Hard bars (exit nonzero on failure):
//   1. On every box, the regret plan's worst-case regret is <= the
//      Exhaustive point plan's.
//   2. On at least one box it is <= 0.5x — hedging must actually buy
//      something, not just tie.
//   3. On the degenerate box the regret plan IS the point plan (same
//      serialized bytes) with zero worst-case regret.
//
// results/bench_regret.csv gets one row per (box, planner); --json-out
// writes the metrics registry (bench_util.h).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "obs/registry.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/regret.h"
#include "opt/split_points.h"
#include "opt/uncertainty.h"
#include "plan/plan_cost.h"
#include "plan/plan_serde.h"
#include "prob/dataset_estimator.h"

using namespace caqp;
using opt::CornerScenarios;
using opt::CostScenario;
using opt::RegretPlanner;
using opt::ScenarioPlanCost;
using opt::UncertaintyBox;

namespace {

constexpr uint64_t kSeed = 20050405;
constexpr size_t kRows = 4000;
constexpr double kAttrCost = 5.0;

/// Equal-cost 3-attribute schema; plan choice is pure selectivity ordering.
Schema BenchSchema() {
  Schema s;
  s.AddAttribute("a0", 10, kAttrCost);
  s.AddAttribute("a1", 10, kAttrCost);
  s.AddAttribute("a2", 10, kAttrCost);
  return s;
}

/// Independent draws at pass rates 0.1 / 0.5 / 0.9 for the [0,0] predicates.
Dataset BenchData(const Schema& schema) {
  const double pass_rate[3] = {0.1, 0.5, 0.9};
  Rng rng(kSeed);
  Dataset ds(schema);
  for (size_t i = 0; i < kRows; ++i) {
    Tuple t(3);
    for (size_t a = 0; a < 3; ++a) {
      t[a] = rng.Bernoulli(pass_rate[a]) ? 0 : 5;
    }
    ds.Append(t);
  }
  return ds;
}

Query BenchQuery() {
  return Query::Conjunction(
      {Predicate(0, 0, 0), Predicate(1, 0, 0), Predicate(2, 0, 0)});
}

struct BoxCase {
  std::string name;
  UncertaintyBox box;
};

std::vector<BoxCase> BenchBoxes() {
  std::vector<BoxCase> boxes;
  boxes.push_back({"point", UncertaintyBox()});
  boxes.push_back({"uniform", UncertaintyBox::Uniform(0.15)});
  // Directional regime-shift box: a0 (selective, evaluated first by every
  // point planner) may have drifted up to +0.85 less selective; a2 may
  // have become the selective one. Exactly the shape FromCalibration
  // produces after an a0-up/a2-down drift window.
  UncertaintyBox drift;
  drift.shift_hi[0] = 0.85;
  drift.shift_lo[2] = -0.85;
  boxes.push_back({"drift", drift});
  // Fault box: a0 may develop up to a 90% transient rate (10x retry cost).
  UncertaintyBox fault;
  fault.fault_hi[0] = 0.9;
  boxes.push_back({"fault", fault});
  return boxes;
}

struct PlanScore {
  std::string planner;
  double nominal_cost = 0.0;
  double worst_regret = 0.0;
  double mean_regret = 0.0;
};

/// Regret of `plan` per scenario against precomputed best costs.
PlanScore Score(const std::string& name, const CompiledPlan& plan,
                CondProbEstimator& est, const AcquisitionCostModel& cm,
                const std::vector<CostScenario>& scenarios,
                const std::vector<double>& best) {
  PlanScore out;
  out.planner = name;
  out.nominal_cost = ScenarioPlanCost(plan, est, cm, scenarios[0]);
  for (size_t s = 0; s < scenarios.size(); ++s) {
    const double regret =
        ScenarioPlanCost(plan, est, cm, scenarios[s]) - best[s];
    out.worst_regret = std::max(out.worst_regret, regret);
    out.mean_regret += regret;
  }
  out.mean_regret /= static_cast<double>(scenarios.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("bench_regret", argc, argv);

  const Schema schema = BenchSchema();
  const Dataset data = BenchData(schema);
  const Query query = BenchQuery();
  DatasetEstimator estimator(data);
  const PerAttributeCostModel cost_model(schema);

  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  ExhaustivePlanner::Options eopts;
  eopts.split_points = &splits;
  const ExhaustivePlanner exhaustive(estimator, cost_model, eopts);

  GreedySeqSolver greedyseq;
  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &greedyseq;
  const GreedyPlanner greedy(estimator, cost_model, gopts);

  const Plan exhaustive_plan = exhaustive.BuildPlan(query);
  const Plan greedy_plan = greedy.BuildPlan(query);
  const CompiledPlan exhaustive_c = CompiledPlan::Compile(exhaustive_plan);
  const CompiledPlan greedy_c = CompiledPlan::Compile(greedy_plan);

  bench::Banner("minmax-regret vs point plans over uncertainty boxes");
  std::printf("%-8s %-11s %9s %12s %11s\n", "box", "planner", "nominal",
              "worst_regret", "mean_regret");

  std::vector<std::string> csv_rows;
  bool bar_dominates = true;     // bar 1: regret <= exhaustive on every box
  bool bar_halves = false;       // bar 2: regret <= 0.5x on some box
  bool bar_identity = false;     // bar 3: point box reproduces point plan
  for (const BoxCase& bc : BenchBoxes()) {
    const std::vector<CostScenario> scenarios = CornerScenarios(bc.box);

    RegretPlanner::Options ropts;
    ropts.point_planner = &exhaustive;
    ropts.box = bc.box;
    const RegretPlanner regret_planner(estimator, cost_model, ropts);
    const Plan regret_plan = regret_planner.BuildPlan(query);
    const CompiledPlan regret_c = CompiledPlan::Compile(regret_plan);

    if (bc.name == "point") {
      bar_identity = SerializePlan(regret_plan) == SerializePlan(exhaustive_plan) &&
                     regret_planner.LastWorstCaseRegret() == 0.0;
    }

    // Reference best-cost per scenario: the regret planner's own candidate
    // set plus the point plans being scored against it.
    const std::vector<Plan> candidates = opt::RegretCandidatePlans(
        query, estimator, cost_model, scenarios, &exhaustive_plan);
    std::vector<const CompiledPlan*> reference;
    std::vector<CompiledPlan> compiled;
    compiled.reserve(candidates.size());
    for (const Plan& p : candidates) {
      compiled.push_back(CompiledPlan::Compile(p));
    }
    for (const CompiledPlan& c : compiled) reference.push_back(&c);
    reference.push_back(&greedy_c);
    reference.push_back(&regret_c);

    std::vector<double> best(scenarios.size(), 0.0);
    for (size_t s = 0; s < scenarios.size(); ++s) {
      double lo = ScenarioPlanCost(*reference[0], estimator, cost_model,
                                   scenarios[s]);
      for (size_t c = 1; c < reference.size(); ++c) {
        lo = std::min(lo, ScenarioPlanCost(*reference[c], estimator,
                                           cost_model, scenarios[s]));
      }
      best[s] = lo;
    }

    const std::vector<PlanScore> scores = {
        Score("exhaustive", exhaustive_c, estimator, cost_model, scenarios,
              best),
        Score("greedy", greedy_c, estimator, cost_model, scenarios, best),
        Score("regret", regret_c, estimator, cost_model, scenarios, best),
    };
    const PlanScore& ex = scores[0];
    const PlanScore& rg = scores[2];
    if (rg.worst_regret > ex.worst_regret + 1e-9) bar_dominates = false;
    if (ex.worst_regret > 1e-9 && rg.worst_regret <= 0.5 * ex.worst_regret) {
      bar_halves = true;
    }

    for (const PlanScore& sc : scores) {
      std::printf("%-8s %-11s %9.3f %12.3f %11.3f\n", bc.name.c_str(),
                  sc.planner.c_str(), sc.nominal_cost, sc.worst_regret,
                  sc.mean_regret);
      char row[192];
      std::snprintf(row, sizeof(row), "%s,%s,%.4f,%.4f,%.4f",
                    bc.name.c_str(), sc.planner.c_str(), sc.nominal_cost,
                    sc.worst_regret, sc.mean_regret);
      csv_rows.emplace_back(row);
      // Dynamic metric names: bypass the per-call-site macro cache.
      obs::DefaultRegistry()
          .GetGauge("bench_regret." + bc.name + "." + sc.planner +
                    ".worst_regret")
          .Set(sc.worst_regret);
    }
    obs::DefaultRegistry()
        .GetGauge("bench_regret." + bc.name + ".scenarios")
        .Set(static_cast<double>(scenarios.size()));
  }
  bench::WriteCsv("bench_regret",
                  "box,planner,nominal_cost,worst_regret,mean_regret",
                  csv_rows);

  obs::DefaultRegistry().GetGauge("bench_regret.bar_dominates")
      .Set(bar_dominates ? 1.0 : 0.0);
  obs::DefaultRegistry().GetGauge("bench_regret.bar_halves")
      .Set(bar_halves ? 1.0 : 0.0);
  obs::DefaultRegistry().GetGauge("bench_regret.bar_point_identity")
      .Set(bar_identity ? 1.0 : 0.0);

  const bool pass = bar_dominates && bar_halves && bar_identity;
  std::printf("\nbars: regret<=exhaustive on every box %s | <=0.5x on some "
              "box %s | point-box bit-identity %s => %s\n",
              bar_dominates ? "PASS" : "FAIL", bar_halves ? "PASS" : "FAIL",
              bar_identity ? "PASS" : "FAIL", pass ? "PASS" : "FAIL");
  bench::FinishBench();
  return pass ? 0 : 1;
}
