// Shared Lab-dataset configurations for the Figure 8 benchmarks.
//
// The paper notes that its exhaustive planner "could only solve problems
// several orders of magnitude smaller than the smallest real-world data
// set"; the Figure 8(a)/(b) comparisons therefore run on a reduced problem.
// We mirror that: a coarsened lab dataset (fewer motes, 8-bin sensors,
// 4-hour time bands) small enough for ExhaustivePlan, plus the full-size
// lab dataset used by the heuristic-only experiments.

#ifndef CAQP_BENCH_LAB_CONFIG_H_
#define CAQP_BENCH_LAB_CONFIG_H_

#include <utility>

#include "data/lab_gen.h"
#include "data/workload.h"

namespace caqp {
namespace bench {

struct LabSetup {
  Dataset train;
  Dataset test;
  LabAttrs attrs;

  LabSetup(Dataset tr, Dataset te, LabAttrs a)
      : train(std::move(tr)), test(std::move(te)), attrs(a) {}
};

/// Coarsened lab problem: 4 motes, 8-bin expensive sensors, 6 time bands.
inline LabSetup MakeReducedLab(size_t readings = 24000) {
  LabDataOptions opts;
  opts.num_motes = 4;
  opts.readings = readings;
  opts.light_bins = 8;
  opts.temp_bins = 8;
  opts.humidity_bins = 8;
  opts.voltage_bins = 4;
  const Dataset raw = GenerateLabData(opts);

  // Re-bucket hour (K=24) into 4-hour bands (K=6) to shrink the DP space.
  Schema reduced;
  reduced.AddAttribute("nodeid", 4, 1.0);
  reduced.AddAttribute("hour", 6, 1.0);  // 4-hour bands
  reduced.AddAttribute("voltage", 4, 1.0);
  reduced.AddAttribute("light", 8, 100.0);
  reduced.AddAttribute("temperature", 8, 100.0);
  reduced.AddAttribute("humidity", 8, 100.0);
  Dataset data(reduced);
  Tuple t(6);
  for (RowId r = 0; r < raw.num_rows(); ++r) {
    t[0] = raw.at(r, 0);
    t[1] = static_cast<Value>(raw.at(r, 1) / 4);
    t[2] = raw.at(r, 2);
    t[3] = raw.at(r, 3);
    t[4] = raw.at(r, 4);
    t[5] = raw.at(r, 5);
    data.Append(t);
  }
  auto [train, test] = data.SplitFraction(0.6);
  return LabSetup(std::move(train), std::move(test),
                  ResolveLabAttrs(reduced));
}

/// Full-size lab problem for heuristic-only experiments.
inline LabSetup MakeFullLab(size_t readings = 60000) {
  LabDataOptions opts;
  opts.readings = readings;
  opts.num_motes = 10;
  const Dataset data = GenerateLabData(opts);
  auto [train, test] = data.SplitFraction(0.6);
  return LabSetup(std::move(train), std::move(test),
                  ResolveLabAttrs(data.schema()));
}

}  // namespace bench
}  // namespace caqp

#endif  // CAQP_BENCH_LAB_CONFIG_H_
