// Shared infrastructure for the figure-reproduction benchmarks: planner
// bundles, cost evaluation over train/test splits, table printing and CSV
// output (results/ directory, one file per figure).

#ifndef CAQP_BENCH_BENCH_UTIL_H_
#define CAQP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/query.h"
#include "opt/cost_model.h"
#include "opt/planner.h"
#include "plan/plan_cost.h"

namespace caqp {
namespace bench {

/// Per-(query, planner) measurement.
struct Measurement {
  std::string planner;
  size_t query_index = 0;
  double train_cost = 0.0;
  double test_cost = 0.0;
  size_t plan_splits = 0;
  size_t plan_bytes = 0;
  size_t verdict_errors = 0;
  double plan_build_seconds = 0.0;
};

/// Runs one planner over a query workload, costing plans on both splits.
/// When structured export is armed (see InitBench) each run additionally
/// records the planner's obs::PlannerStats and a per-attribute acquisition
/// profile of the test pass.
std::vector<Measurement> RunWorkload(Planner& planner,
                                     const std::vector<Query>& queries,
                                     const Dataset& train, const Dataset& test,
                                     const AcquisitionCostModel& cost_model);

/// Call once at the top of a bench main. Parses `--json-out <path>` (or
/// `--json-out=<path>`) from argv, falling back to the CAQP_JSON_OUT
/// environment variable; when a path is found, structured export is armed:
/// every subsequent RunWorkload logs its runs and FinishBench writes one
/// JSON document covering the whole binary invocation.
void InitBench(const std::string& bench_name, int argc = 0,
               char** argv = nullptr);

/// True when InitBench armed structured export.
bool JsonExportEnabled();

/// Writes the accumulated run log plus a metrics-registry snapshot to the
/// --json-out path and disarms export. No-op when export is off.
void FinishBench();

/// Mean of a field over measurements of one planner.
double MeanTestCost(const std::vector<Measurement>& ms);
double MeanTrainCost(const std::vector<Measurement>& ms);

/// Per-query cost ratio baseline/alg (>1: alg wins); aligned by query index.
std::vector<double> GainsVersus(const std::vector<Measurement>& baseline,
                                const std::vector<Measurement>& alg,
                                bool use_test = true);

/// Writes rows to results/<name>.csv with a header line.
void WriteCsv(const std::string& name, const std::string& header,
              const std::vector<std::string>& rows);

/// Prints a section banner.
void Banner(const std::string& title);

}  // namespace bench
}  // namespace caqp

#endif  // CAQP_BENCH_BENCH_UTIL_H_
