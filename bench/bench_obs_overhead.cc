// Measures the cost of the obs instrumentation on the executor hot paths —
// both the tree-walking ExecutePlan and the flat CompiledPlan executor.
// Five configurations per path over the same plan and tuples:
//
//   baseline   a local copy of the executor loop with no instrumentation
//              at all (no trace pointer, no counter macros, no span site)
//   obs-off    ExecutePlan with runtime instrumentation disabled
//              (obs::SetEnabled(false)) and a null trace sink
//   obs-on     ExecutePlan with counters enabled
//   profiled   ExecutePlan with counters enabled and a per-node
//              ExecutionProfile attached (the serve calibration path)
//   traced     ExecutePlan with counters enabled and an ExecutionTrace sink
//
// The acceptance bar for the instrumentation is obs-off within 5% of
// baseline on BOTH paths: a disabled counter is one predicted-untaken
// branch, a null trace sink is one pointer test, and an unbound span site
// is one thread-local load per call. Reported numbers are the minimum over
// repetitions (least-noise estimate); the process exits non-zero when
// either path misses the bar, so CI enforces it.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/exec_profile.h"
#include "exec/executor.h"
#include "obs/exposer.h"
#include "obs/obs.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "plan/compiled_plan.h"
#include "prob/dataset_estimator.h"
#include "test_support.h"

using namespace caqp;

namespace {

/// Executor loop stripped of every obs hook; an exact copy of the library's
/// ExecutePlanImpl<false> (exec/executor.cc) — degradation-policy machinery
/// included — minus the wrapper's span site, trace dispatch, and counter
/// emission, so the comparison isolates instrumentation cost. Must be kept
/// textually in sync when the library impl changes; a mirror that drifts
/// measures algorithmic differences as "overhead". noinline so the baseline
/// pays the same function-call boundary as the library's ExecutePlan;
/// aligned(64) so the measured delta is not at the mercy of where the
/// linker happens to drop the mirror relative to I-cache lines — the true
/// disabled-path cost is ~1-2 ns/tuple and unpinned layout luck swings the
/// comparison by about the same amount.
__attribute__((noinline, aligned(64))) ExecutionResult ExecutePlanBare(
    const Plan& plan, const Schema& schema,
    const AcquisitionCostModel& cost_model, AcquisitionSource& source,
    const DegradationPolicy& policy) {
  ExecutionResult out;
  std::vector<Value> values(schema.num_attributes(), 0);
  const int max_attempts =
      policy.mode == DegradationPolicy::Mode::kRetry
          ? std::max(1, policy.max_attempts)
          : 1;

  auto acquire = [&](AttrId a, Value* v) -> bool {
    if (out.acquired.Contains(a)) {
      *v = values[a];
      return true;
    }
    if (out.failed.Contains(a)) return false;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      const AcquiredValue av = source.Acquire(a);
      double marginal = cost_model.Cost(a, out.acquired) * av.cost_multiplier;
      if (attempt > 0) {
        marginal *= policy.retry_cost_multiplier;
        ++out.retries;
      }
      out.cost += marginal;
      if (av.ok) {
        out.acquired.Insert(a);
        ++out.acquisitions;
        values[a] = av.value;
        *v = av.value;
        return true;
      }
      if (av.permanent) break;
    }
    out.failed.Insert(a);
    return false;
  };

  auto degrade = [&]() -> bool {
    out.verdict3 = Truth::kUnknown;
    if (policy.mode == DegradationPolicy::Mode::kAbort) {
      out.aborted = true;
      return true;
    }
    return false;
  };

  const PlanNode* n = &plan.root();
  Value v = 0;
  bool routed = true;
  while (n->kind == PlanNode::Kind::kSplit) {
    if (!acquire(n->attr, &v)) {
      (void)degrade();
      routed = false;
      break;
    }
    n = (v >= n->split_value) ? n->ge.get() : n->lt.get();
  }

  if (routed) {
    switch (n->kind) {
      case PlanNode::Kind::kVerdict:
        out.verdict3 = n->verdict ? Truth::kTrue : Truth::kFalse;
        break;
      case PlanNode::Kind::kSequential: {
        Truth t = Truth::kTrue;
        for (const Predicate& p : n->sequence) {
          if (!acquire(p.attr, &v)) {
            if (degrade()) break;
            t = Truth::kUnknown;
            continue;
          }
          const bool match = p.Matches(v);
          if (!match) {
            t = Truth::kFalse;
            break;
          }
        }
        if (!out.aborted) out.verdict3 = t;
        break;
      }
      case PlanNode::Kind::kGeneric: {
        RangeVec ranges = schema.FullRanges();
        for (size_t a = 0; a < schema.num_attributes(); ++a) {
          if (out.acquired.Contains(static_cast<AttrId>(a))) {
            ranges[a] = ValueRange{values[a], values[a]};
          }
        }
        Truth t = n->residual_query.EvaluateOnRanges(ranges);
        for (size_t k = 0; t == Truth::kUnknown && k < n->acquire_order.size();
             ++k) {
          const AttrId a = n->acquire_order[k];
          if (!acquire(a, &v)) {
            if (degrade()) break;
            continue;
          }
          ranges[a] = ValueRange{v, v};
          t = n->residual_query.EvaluateOnRanges(ranges);
        }
        CAQP_CHECK(t != Truth::kUnknown || out.failed.Count() > 0);
        if (!out.aborted) out.verdict3 = t;
        break;
      }
      case PlanNode::Kind::kSplit:
        CAQP_CHECK(false);
    }
  }
  out.verdict = out.verdict3 == Truth::kTrue;
  return out;
}

/// Flat-executor twin: exact copy of ExecuteCompiledImpl<false>
/// (exec/executor.cc) minus the wrapper's obs hooks. Same sync and
/// alignment caveats as ExecutePlanBare above.
__attribute__((noinline, aligned(64))) ExecutionResult ExecuteCompiledBare(
    const CompiledPlan& plan, const Schema& schema,
    const AcquisitionCostModel& cost_model, AcquisitionSource& source,
    const DegradationPolicy& policy) {
  ExecutionResult out;
  CAQP_DCHECK(schema.num_attributes() <= 64);
  Value values[64];
  const int max_attempts =
      policy.mode == DegradationPolicy::Mode::kRetry
          ? std::max(1, policy.max_attempts)
          : 1;

  auto attempt = [&](AttrId a, Value* v) -> bool {
    for (int att = 0; att < max_attempts; ++att) {
      const AcquiredValue av = source.Acquire(a);
      double marginal = cost_model.Cost(a, out.acquired) * av.cost_multiplier;
      if (att > 0) {
        marginal *= policy.retry_cost_multiplier;
        ++out.retries;
      }
      out.cost += marginal;
      if (av.ok) {
        out.acquired.Insert(a);
        ++out.acquisitions;
        values[a] = av.value;
        *v = av.value;
        return true;
      }
      if (av.permanent) break;
    }
    out.failed.Insert(a);
    return false;
  };

  auto acquire = [&](AttrId a, Value* v) -> bool {
    if (out.acquired.Contains(a)) {
      *v = values[a];
      return true;
    }
    if (out.failed.Contains(a)) return false;
    return attempt(a, v);
  };

  auto degrade = [&]() -> bool {
    out.verdict3 = Truth::kUnknown;
    if (policy.mode == DegradationPolicy::Mode::kAbort) {
      out.aborted = true;
      return true;
    }
    return false;
  };

  uint32_t idx = 0;
  const CompiledPlan::Node* n = &plan.node(0);
  Value v = 0;
  bool routed = true;
  while (n->kind == CompiledPlan::Kind::kSplit) {
    if (n->first_acquisition()) {
      if (!attempt(n->attr, &v)) {
        (void)degrade();
        routed = false;
        break;
      }
    } else {
      v = values[n->attr];
    }
    idx = (v >= n->split_value) ? n->a : idx + 1;
    n = &plan.node(idx);
  }

  if (routed) {
    switch (n->kind) {
      case CompiledPlan::Kind::kVerdict:
        out.verdict3 = n->verdict() ? Truth::kTrue : Truth::kFalse;
        break;
      case CompiledPlan::Kind::kSequential: {
        Truth t = Truth::kTrue;
        for (const Predicate& p : plan.sequence(*n)) {
          if (!acquire(p.attr, &v)) {
            if (degrade()) break;
            t = Truth::kUnknown;
            continue;
          }
          const bool match = p.Matches(v);
          if (!match) {
            t = Truth::kFalse;
            break;
          }
        }
        if (!out.aborted) out.verdict3 = t;
        break;
      }
      case CompiledPlan::Kind::kGeneric: {
        const Query& query = plan.residual_query(*n);
        RangeVec ranges = schema.FullRanges();
        for (size_t a = 0; a < schema.num_attributes(); ++a) {
          if (out.acquired.Contains(static_cast<AttrId>(a))) {
            ranges[a] = ValueRange{values[a], values[a]};
          }
        }
        Truth t = query.EvaluateOnRanges(ranges);
        for (const AttrId a : plan.acquire_order(*n)) {
          if (t != Truth::kUnknown) break;
          if (!acquire(a, &v)) {
            if (degrade()) break;
            continue;
          }
          ranges[a] = ValueRange{v, v};
          t = query.EvaluateOnRanges(ranges);
        }
        CAQP_CHECK(t != Truth::kUnknown || out.failed.Count() > 0);
        if (!out.aborted) out.verdict3 = t;
        break;
      }
      case CompiledPlan::Kind::kSplit:
        CAQP_CHECK(false);
    }
  }
  out.verdict = out.verdict3 == Truth::kTrue;
  return out;
}

double RunBare(const Plan& plan, const Schema& schema,
               const AcquisitionCostModel& cm, const std::vector<Tuple>& rows,
               TraceSink* /*trace*/, ExecutionProfile* /*profile*/) {
  double sink = 0;
  const DegradationPolicy policy;
  for (const Tuple& t : rows) {
    TupleSource src(t);
    sink += ExecutePlanBare(plan, schema, cm, src, policy).cost;
  }
  return sink;
}

double RunInstrumented(const Plan& plan, const Schema& schema,
                       const AcquisitionCostModel& cm,
                       const std::vector<Tuple>& rows, TraceSink* trace,
                       ExecutionProfile* profile) {
  double sink = 0;
  for (const Tuple& t : rows) {
    TupleSource src(t);
    sink += ExecutePlan(plan, schema, cm, src, trace, {}, profile).cost;
  }
  return sink;
}

double RunFlatBare(const CompiledPlan& plan, const Schema& schema,
                   const AcquisitionCostModel& cm,
                   const std::vector<Tuple>& rows, TraceSink* /*trace*/,
                   ExecutionProfile* /*profile*/) {
  double sink = 0;
  const DegradationPolicy policy;
  for (const Tuple& t : rows) {
    TupleSource src(t);
    sink += ExecuteCompiledBare(plan, schema, cm, src, policy).cost;
  }
  return sink;
}

double RunFlatInstrumented(const CompiledPlan& plan, const Schema& schema,
                           const AcquisitionCostModel& cm,
                           const std::vector<Tuple>& rows, TraceSink* trace,
                           ExecutionProfile* profile) {
  double sink = 0;
  for (const Tuple& t : rows) {
    TupleSource src(t);
    sink += ExecutePlan(plan, schema, cm, src, trace, {}, profile).cost;
  }
  return sink;
}

/// One timed pass, in ns per tuple.
template <typename RunnerT, typename PlanT>
double TimeOnce(RunnerT run, const PlanT& plan, const Schema& schema,
                const AcquisitionCostModel& cm, const std::vector<Tuple>& rows,
                TraceSink* trace, ExecutionProfile* profile = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  volatile double keep = run(plan, schema, cm, rows, trace, profile);
  (void)keep;
  const auto t1 = std::chrono::steady_clock::now();
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return ns / static_cast<double>(rows.size());
}

struct PathReport {
  double bare = 1e300;
  double off = 1e300;
  double on = 1e300;
  double profiled = 1e300;
  double traced = 1e300;

  double OffOverheadPct() const { return 100.0 * (off - bare) / bare; }

  void Print(const char* title) const {
    auto pct = [&](double x) { return 100.0 * (x - bare) / bare; };
    std::printf("\n== %s ==\n", title);
    std::printf("%-28s %10.1f ns/tuple\n", "baseline (no instrumentation)",
                bare);
    std::printf("%-28s %10.1f ns/tuple  (%+.1f%%)\n", "obs disabled", off,
                pct(off));
    std::printf("%-28s %10.1f ns/tuple  (%+.1f%%)\n", "obs enabled", on,
                pct(on));
    std::printf("%-28s %10.1f ns/tuple  (%+.1f%%)\n", "obs + node profile",
                profiled, pct(profiled));
    std::printf("%-28s %10.1f ns/tuple  (%+.1f%%)\n", "obs + ExecutionTrace",
                traced, pct(traced));
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("bench_obs", argc, argv);
  // The PR 10 exposer contract: the serving binary compiles the metrics
  // endpoint in unconditionally, and a constructed-but-not-started exposer
  // must cost nothing. Linking it here (never Start()ed) keeps the <5%
  // disabled-path bar honest against the full telemetry plane.
  obs::MetricsExposer exposer([] { return std::string(); },
                              obs::MetricsExposer::Options{});
  if (exposer.running()) return 1;  // never started; also defeats DCE

  const Dataset data = benchsupport::MakeCorrelated(8, 16, 50000, 17);
  const Query query = benchsupport::MidRangeQuery(data.schema(), 4);
  DatasetEstimator est(data);
  PerAttributeCostModel cm(data.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(data.schema());
  GreedySeqSolver solver;
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &solver;
  opts.max_splits = 4;
  GreedyPlanner planner(est, cm, opts);
  const Plan plan = planner.BuildPlan(query);
  const CompiledPlan flat = CompiledPlan::Compile(plan);
  std::printf("plan: %zu splits (%zu flat nodes); %zu tuples x 8 attrs\n",
              plan.NumSplits(), flat.NumNodes(), data.num_rows());

  std::vector<Tuple> rows;
  rows.reserve(data.num_rows());
  for (RowId r = 0; r < data.num_rows(); ++r) rows.push_back(data.GetTuple(r));

  // Interleave the configurations across repetitions so slow drift
  // (frequency scaling, noisy neighbours) hits them all equally; keep the
  // minimum per configuration as the least-noise estimate.
  RunInstrumented(plan, data.schema(), cm, rows, nullptr, nullptr);  // warm-up
  RunFlatInstrumented(flat, data.schema(), cm, rows, nullptr,
                      nullptr);  // warm-up
  PathReport tree, flat_path;
  ExecutionTrace trace;
  // Shared by both paths: PlanNode ids are preorder, matching flat indices.
  ExecutionProfile profile(flat.NumNodes());
  const Schema& schema = data.schema();
  // The estimator is a min, so extra reps can only tighten it: when a path
  // sits at the bar after the base reps, keep sampling before declaring
  // failure. Transient machine noise (CI neighbours, thermal throttling)
  // gets averaged out; a genuine regression stays above the bar no matter
  // how many reps run.
  constexpr double kBarPct = 5.0;
  const size_t kReps = 15;
  const size_t kMaxReps = 40;
  for (size_t rep = 0;
       rep < kReps || (rep < kMaxReps && (tree.OffOverheadPct() >= kBarPct ||
                                          flat_path.OffOverheadPct() >=
                                              kBarPct));
       ++rep) {
    tree.bare =
        std::min(tree.bare, TimeOnce(&RunBare, plan, schema, cm, rows,
                                     static_cast<TraceSink*>(nullptr)));
    flat_path.bare = std::min(
        flat_path.bare, TimeOnce(&RunFlatBare, flat, schema, cm, rows,
                                 static_cast<TraceSink*>(nullptr)));
    obs::SetEnabled(false);
    tree.off =
        std::min(tree.off, TimeOnce(&RunInstrumented, plan, schema, cm, rows,
                                    static_cast<TraceSink*>(nullptr)));
    flat_path.off = std::min(
        flat_path.off, TimeOnce(&RunFlatInstrumented, flat, schema, cm, rows,
                                static_cast<TraceSink*>(nullptr)));
    obs::SetEnabled(true);
    tree.on =
        std::min(tree.on, TimeOnce(&RunInstrumented, plan, schema, cm, rows,
                                   static_cast<TraceSink*>(nullptr)));
    flat_path.on = std::min(
        flat_path.on, TimeOnce(&RunFlatInstrumented, flat, schema, cm, rows,
                               static_cast<TraceSink*>(nullptr)));
    tree.profiled = std::min(
        tree.profiled, TimeOnce(&RunInstrumented, plan, schema, cm, rows,
                                static_cast<TraceSink*>(nullptr), &profile));
    flat_path.profiled = std::min(
        flat_path.profiled,
        TimeOnce(&RunFlatInstrumented, flat, schema, cm, rows,
                 static_cast<TraceSink*>(nullptr), &profile));
    tree.traced = std::min(
        tree.traced, TimeOnce(&RunInstrumented, plan, schema, cm, rows,
                              static_cast<TraceSink*>(&trace)));
    flat_path.traced = std::min(
        flat_path.traced, TimeOnce(&RunFlatInstrumented, flat, schema, cm,
                                   rows, static_cast<TraceSink*>(&trace)));
    if (rep + 1 == kReps && (tree.OffOverheadPct() >= kBarPct ||
                             flat_path.OffOverheadPct() >= kBarPct)) {
      std::printf("near the bar (tree %.1f%%, flat %.1f%%); extending reps\n",
                  tree.OffOverheadPct(), flat_path.OffOverheadPct());
    }
  }

  tree.Print("tree executor (ExecutePlan on Plan)");
  flat_path.Print("flat executor (ExecutePlan on CompiledPlan)");

  const double tree_over = tree.OffOverheadPct();
  const double flat_over = flat_path.OffOverheadPct();
  std::printf(
      "\ndisabled-instrumentation overhead: tree %.1f%%, flat %.1f%% "
      "(bar: < %.0f%%)\n",
      tree_over, flat_over, kBarPct);
  bool ok = true;
  if (tree_over >= kBarPct) {
    std::printf("FAIL: tree executor misses the disabled-overhead bar\n");
    ok = false;
  }
  if (flat_over >= kBarPct) {
    std::printf("FAIL: flat executor misses the disabled-overhead bar\n");
    ok = false;
  }

  // Structured export for scripts/check_bench_bars.py: the <5% bar becomes
  // "headroom >= 0" so --min works directly, and the raw numbers ride along
  // for baseline (BENCH_obs.json) diffing.
  obs::MetricsRegistry& reg = obs::DefaultRegistry();
  reg.GetGauge("bench_obs.tree_overhead_pct").Set(tree_over);
  reg.GetGauge("bench_obs.flat_overhead_pct").Set(flat_over);
  reg.GetGauge("bench_obs.tree_headroom_pct").Set(kBarPct - tree_over);
  reg.GetGauge("bench_obs.flat_headroom_pct").Set(kBarPct - flat_over);
  reg.GetGauge("bench_obs.tree_bare_ns").Set(tree.bare);
  reg.GetGauge("bench_obs.tree_off_ns").Set(tree.off);
  reg.GetGauge("bench_obs.tree_on_ns").Set(tree.on);
  reg.GetGauge("bench_obs.flat_bare_ns").Set(flat_path.bare);
  reg.GetGauge("bench_obs.flat_off_ns").Set(flat_path.off);
  reg.GetGauge("bench_obs.flat_on_ns").Set(flat_path.on);
  bench::FinishBench();
  return ok ? 0 : 1;
}
