// Measures the cost of the obs instrumentation on the executor hot path.
// Four configurations over the same plan and tuples:
//
//   baseline   a local copy of the executor loop with no instrumentation
//              at all (no trace pointer, no counter macros)
//   obs-off    ExecutePlan with runtime instrumentation disabled
//              (obs::SetEnabled(false)) and a null trace sink
//   obs-on     ExecutePlan with counters enabled
//   traced     ExecutePlan with counters enabled and an ExecutionTrace sink
//
// The acceptance bar for the instrumentation is obs-off within 5% of
// baseline: a disabled counter is one predicted-untaken branch and a null
// trace sink is one pointer test per event site. Reported numbers are the
// minimum over repetitions (least-noise estimate).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "exec/executor.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "prob/dataset_estimator.h"
#include "test_support.h"

using namespace caqp;

namespace {

/// Executor loop stripped of every obs hook; must mirror ExecutePlan's
/// traversal so the comparison isolates instrumentation cost. noinline so
/// the baseline pays the same function-call boundary as the library's
/// ExecutePlan instead of being folded into the timing loop.
__attribute__((noinline)) ExecutionResult ExecutePlanBare(
    const Plan& plan, const Schema& schema,
    const AcquisitionCostModel& cost_model, AcquisitionSource& source) {
  ExecutionResult out;
  std::vector<Value> values(schema.num_attributes(), 0);
  auto acquire = [&](AttrId a) -> Value {
    if (!out.acquired.Contains(a)) {
      out.cost += cost_model.Cost(a, out.acquired);
      out.acquired.Insert(a);
      ++out.acquisitions;
      values[a] = source.Acquire(a).value;
    }
    return values[a];
  };

  const PlanNode* n = &plan.root();
  while (n->kind == PlanNode::Kind::kSplit) {
    n = (acquire(n->attr) >= n->split_value) ? n->ge.get() : n->lt.get();
  }
  switch (n->kind) {
    case PlanNode::Kind::kVerdict:
      out.verdict = n->verdict;
      break;
    case PlanNode::Kind::kSequential: {
      out.verdict = true;
      for (const Predicate& p : n->sequence) {
        if (!p.Matches(acquire(p.attr))) {
          out.verdict = false;
          break;
        }
      }
      break;
    }
    case PlanNode::Kind::kGeneric: {
      RangeVec ranges = schema.FullRanges();
      for (size_t a = 0; a < schema.num_attributes(); ++a) {
        if (out.acquired.Contains(static_cast<AttrId>(a))) {
          ranges[a] = ValueRange{values[a], values[a]};
        }
      }
      Truth t = n->residual_query.EvaluateOnRanges(ranges);
      for (size_t k = 0; t == Truth::kUnknown && k < n->acquire_order.size();
           ++k) {
        const AttrId a = n->acquire_order[k];
        const Value v = acquire(a);
        ranges[a] = ValueRange{v, v};
        t = n->residual_query.EvaluateOnRanges(ranges);
      }
      CAQP_CHECK(t != Truth::kUnknown);
      out.verdict = (t == Truth::kTrue);
      break;
    }
    case PlanNode::Kind::kSplit:
      CAQP_CHECK(false);
  }
  return out;
}

using Runner = double (*)(const Plan&, const Schema&,
                          const AcquisitionCostModel&,
                          const std::vector<Tuple>&, TraceSink*);

double RunBare(const Plan& plan, const Schema& schema,
               const AcquisitionCostModel& cm, const std::vector<Tuple>& rows,
               TraceSink* /*trace*/) {
  double sink = 0;
  for (const Tuple& t : rows) {
    TupleSource src(t);
    sink += ExecutePlanBare(plan, schema, cm, src).cost;
  }
  return sink;
}

double RunInstrumented(const Plan& plan, const Schema& schema,
                       const AcquisitionCostModel& cm,
                       const std::vector<Tuple>& rows, TraceSink* trace) {
  double sink = 0;
  for (const Tuple& t : rows) {
    TupleSource src(t);
    sink += ExecutePlan(plan, schema, cm, src, trace).cost;
  }
  return sink;
}

/// One timed pass, in ns per tuple.
double TimeOnce(Runner run, const Plan& plan, const Schema& schema,
                const AcquisitionCostModel& cm, const std::vector<Tuple>& rows,
                TraceSink* trace) {
  const auto t0 = std::chrono::steady_clock::now();
  volatile double keep = run(plan, schema, cm, rows, trace);
  (void)keep;
  const auto t1 = std::chrono::steady_clock::now();
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return ns / static_cast<double>(rows.size());
}

}  // namespace

int main() {
  const Dataset data = benchsupport::MakeCorrelated(8, 16, 50000, 17);
  const Query query = benchsupport::MidRangeQuery(data.schema(), 4);
  DatasetEstimator est(data);
  PerAttributeCostModel cm(data.schema());
  const SplitPointSet splits = SplitPointSet::AllPoints(data.schema());
  GreedySeqSolver solver;
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &solver;
  opts.max_splits = 4;
  GreedyPlanner planner(est, cm, opts);
  const Plan plan = planner.BuildPlan(query);
  std::printf("plan: %zu splits; %zu tuples x 8 attrs\n", plan.NumSplits(),
              data.num_rows());

  std::vector<Tuple> rows;
  rows.reserve(data.num_rows());
  for (RowId r = 0; r < data.num_rows(); ++r) rows.push_back(data.GetTuple(r));

  // Interleave the configurations across repetitions so slow drift
  // (frequency scaling, noisy neighbours) hits them all equally; keep the
  // minimum per configuration as the least-noise estimate.
  const size_t kReps = 15;
  RunInstrumented(plan, data.schema(), cm, rows, nullptr);  // warm-up
  double bare = 1e300, off = 1e300, on = 1e300, traced = 1e300;
  ExecutionTrace trace;
  for (size_t rep = 0; rep < kReps; ++rep) {
    bare = std::min(
        bare, TimeOnce(&RunBare, plan, data.schema(), cm, rows, nullptr));
    obs::SetEnabled(false);
    off = std::min(off, TimeOnce(&RunInstrumented, plan, data.schema(), cm,
                                 rows, nullptr));
    obs::SetEnabled(true);
    on = std::min(on, TimeOnce(&RunInstrumented, plan, data.schema(), cm,
                               rows, nullptr));
    traced = std::min(traced, TimeOnce(&RunInstrumented, plan, data.schema(),
                                       cm, rows, &trace));
  }

  auto pct = [&](double x) { return 100.0 * (x - bare) / bare; };
  std::printf("\n%-28s %10.1f ns/tuple\n", "baseline (no instrumentation)",
              bare);
  std::printf("%-28s %10.1f ns/tuple  (%+.1f%%)\n", "obs disabled", off,
              pct(off));
  std::printf("%-28s %10.1f ns/tuple  (%+.1f%%)\n", "obs enabled", on,
              pct(on));
  std::printf("%-28s %10.1f ns/tuple  (%+.1f%%)\n", "obs + ExecutionTrace",
              traced, pct(traced));
  std::printf("\ndisabled-instrumentation overhead: %.1f%% (bar: < 5%%)\n",
              pct(off));
  return 0;
}
