// Figure 8(a): plan quality of Exhaustive vs Naive vs Heuristic-k on the
// (reduced) Lab dataset. The paper runs 95 three-predicate queries whose
// predicates pass ~50% of tuples, and reports average and worst-case costs;
// Heuristic-10 tracks Exhaustive closely and everything beats Naive.
//
// Output: per-planner mean/max cost normalized to Exhaustive (training
// data, as in the paper's quality comparison) plus raw test costs.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "lab_config.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "prob/dataset_estimator.h"

using namespace caqp;
using namespace caqp::bench;

int main(int argc, char** argv) {
  InitBench("fig8a_lab_quality", argc, argv);
  Banner("Figure 8(a): Exhaustive vs Naive vs Heuristic-k (reduced Lab)");

  LabSetup lab = MakeReducedLab();
  const Schema& schema = lab.train.schema();
  DatasetEstimator est(lab.train);
  PerAttributeCostModel cm(schema);

  LabQueryOptions qopts;
  qopts.num_queries = 95;
  const std::vector<Query> queries = GenerateLabQueries(
      lab.train, {lab.attrs.light, lab.attrs.temperature, lab.attrs.humidity},
      qopts);

  // A restricted split-point grid shared by every planner, mirroring the
  // paper's use of one SPSF (1e8) for the Figure 8(a) comparison. The grid
  // must stay small enough for the exhaustive DP: this one yields at most
  // 3*6*3*10*10*10 = 54k distinct subproblems.
  const SplitPointSet splits =
      SplitPointSet::EquiSpaced(schema, {1, 2, 1, 3, 3, 3});
  std::printf("shared split grid: log10(SPSF) = %.2f\n", splits.Log10Spsf());
  OptSeqSolver optseq;

  NaivePlanner naive(est, cm);
  ExhaustivePlanner::Options eopts;
  eopts.split_points = &splits;
  ExhaustivePlanner exhaustive(est, cm, eopts);

  auto heuristic = [&](size_t k) {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &optseq;
    opts.max_splits = k;
    return GreedyPlanner(est, cm, opts);
  };
  GreedyPlanner h0 = heuristic(0), h5 = heuristic(5), h10 = heuristic(10);

  std::printf("running %zu queries x 5 planners...\n", queries.size());
  const auto m_ex = RunWorkload(exhaustive, queries, lab.train, lab.test, cm);
  const auto m_naive = RunWorkload(naive, queries, lab.train, lab.test, cm);
  const auto m_h0 = RunWorkload(h0, queries, lab.train, lab.test, cm);
  const auto m_h5 = RunWorkload(h5, queries, lab.train, lab.test, cm);
  const auto m_h10 = RunWorkload(h10, queries, lab.train, lab.test, cm);

  std::printf("\n%-14s %12s %12s %12s %10s\n", "planner", "mean norm",
              "worst norm", "mean test", "errors");
  std::vector<std::string> rows;
  auto report = [&](const std::vector<Measurement>& ms) {
    double norm_sum = 0, norm_max = 0, test_sum = 0;
    size_t errors = 0;
    for (size_t i = 0; i < ms.size(); ++i) {
      const double norm =
          m_ex[i].train_cost > 0 ? ms[i].train_cost / m_ex[i].train_cost : 1.0;
      norm_sum += norm;
      norm_max = std::max(norm_max, norm);
      test_sum += ms[i].test_cost;
      errors += ms[i].verdict_errors;
    }
    const double mean_norm = norm_sum / ms.size();
    const double mean_test = test_sum / ms.size();
    std::printf("%-14s %12.3f %12.3f %12.2f %10zu\n", ms[0].planner.c_str(),
                mean_norm, norm_max, mean_test, errors);
    rows.push_back(ms[0].planner + "," + std::to_string(mean_norm) + "," +
                   std::to_string(norm_max) + "," + std::to_string(mean_test));
  };
  report(m_naive);
  report(m_h0);
  report(m_h5);
  report(m_h10);
  report(m_ex);

  WriteCsv("fig8a_lab_quality",
           "planner,mean_norm_vs_exhaustive,worst_norm,mean_test_cost", rows);
  std::printf(
      "\nexpected shape: Naive worst; Heuristic-10 ~ Exhaustive (norm ~1).\n");
  FinishBench();
  return 0;
}
