// Shared driver for the Garden-5 / Garden-11 benchmarks (Figures 10-11):
// generate the garden network trace, draw the paper's query workload
// (identical range predicates over every mote's temperature and humidity,
// randomly negated, widths covering domain/f for f in [1.25, 3.25]), run
// Naive / CorrSeq(GreedySeq) / Heuristic, and print per-query scatter rows
// plus gain summaries.

#ifndef CAQP_BENCH_GARDEN_RUNNER_H_
#define CAQP_BENCH_GARDEN_RUNNER_H_

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "data/garden_gen.h"
#include "data/workload.h"
#include "exec/metrics.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "prob/dataset_estimator.h"

namespace caqp {
namespace bench {

struct GardenBenchConfig {
  size_t num_motes = 5;
  size_t epochs = 20000;
  size_t num_queries = 90;
  size_t max_splits = 5;
  std::string csv_name = "fig10_garden5";
};

inline void RunGardenBench(const GardenBenchConfig& cfg) {
  GardenDataOptions gopts;
  gopts.num_motes = cfg.num_motes;
  gopts.epochs = cfg.epochs;
  const Dataset all = GenerateGardenData(gopts);
  const auto [train, test] = all.SplitFraction(0.6);
  const Schema& schema = all.schema();
  const GardenAttrs attrs = ResolveGardenAttrs(schema);

  GardenQueryOptions qopts;
  qopts.num_queries = cfg.num_queries;
  const std::vector<Query> queries = GenerateGardenQueries(
      schema, attrs.temperature, attrs.humidity, qopts);
  std::printf("%zu motes -> %zu attributes; %zu queries x %zu predicates; "
              "train=%zu test=%zu\n",
              cfg.num_motes, schema.num_attributes(), queries.size(),
              queries[0].predicates().size(), train.num_rows(),
              test.num_rows());

  DatasetEstimator est(train);
  PerAttributeCostModel cm(schema);
  // SPSF = 10^n, as in the paper's garden experiments.
  const SplitPointSet splits = SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes()));
  GreedySeqSolver greedyseq;

  NaivePlanner naive(est, cm);
  SequentialPlanner corrseq(est, cm, greedyseq, "CorrSeq");
  GreedyPlanner::Options hopts;
  hopts.split_points = &splits;
  hopts.seq_solver = &greedyseq;
  hopts.max_splits = cfg.max_splits;
  GreedyPlanner heuristic(est, cm, hopts);

  std::printf("planning...\n");
  const auto m_naive = RunWorkload(naive, queries, train, test, cm);
  const auto m_corr = RunWorkload(corrseq, queries, train, test, cm);
  const auto m_heur = RunWorkload(heuristic, queries, train, test, cm);

  // Scatter rows (the paper plots Heuristic's cost against each baseline).
  std::vector<std::string> rows;
  std::printf("\nper-query test costs (first 10 shown):\n");
  std::printf("%5s %12s %12s %12s\n", "query", "Naive", "CorrSeq",
              heuristic.Name().c_str());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i < 10) {
      std::printf("%5zu %12.1f %12.1f %12.1f\n", i, m_naive[i].test_cost,
                  m_corr[i].test_cost, m_heur[i].test_cost);
    }
    rows.push_back(std::to_string(i) + "," +
                   std::to_string(m_naive[i].test_cost) + "," +
                   std::to_string(m_corr[i].test_cost) + "," +
                   std::to_string(m_heur[i].test_cost));
  }
  WriteCsv(cfg.csv_name, "query,naive_test,corrseq_test,heuristic_test", rows);

  for (const auto& [label, base] :
       {std::pair<const char*, const std::vector<Measurement>*>{
            "Naive", &m_naive},
        {"CorrSeq", &m_corr}}) {
    const std::vector<double> gains = GainsVersus(*base, m_heur);
    const GainStats stats = SummarizeGains(gains);
    size_t regressions = 0;
    for (double g : gains) regressions += g < 0.9 ? 1 : 0;
    std::printf("\n%s vs %s (test): mean %.2fx median %.2fx best %.2fx "
                "worst %.2fx; >10%% regressions: %zu/%zu\n",
                heuristic.Name().c_str(), label, stats.mean, stats.median,
                stats.max, stats.min, regressions, gains.size());
    std::printf("  gain >= x (fraction): ");
    for (const auto& [x, frac] : CumulativeGainCurve(gains, 6)) {
      std::printf(" %.2fx:%.2f", x, frac);
    }
    std::printf("\n");
  }
  double mean_naive = MeanTestCost(m_naive);
  double mean_heur = MeanTestCost(m_heur);
  std::printf("\nmean test cost: Naive %.1f, CorrSeq %.1f, %s %.1f "
              "(%.2fx vs Naive)\n",
              mean_naive, MeanTestCost(m_corr), heuristic.Name().c_str(),
              mean_heur, mean_naive / mean_heur);
}

}  // namespace bench
}  // namespace caqp

#endif  // CAQP_BENCH_GARDEN_RUNNER_H_
