// Figure 12: the synthetic generator adapted from Babu et al. [2], four
// parameter settings -- (Gamma=1, n=10), (Gamma=3, n=10), (Gamma=1, n=40),
// (Gamma=3, n=40) with 5/7/20/30-predicate queries respectively -- sweeping
// the unconditional selectivity `sel`. The paper's shapes:
//   * conditional planning beats Naive and CorrSeq, often by > 2x;
//   * at Gamma=1, Naive and CorrSeq produce nearly identical plans;
//   * Heuristic-5 ~ Heuristic-10 when n=10.

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic_gen.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "prob/dataset_estimator.h"

using namespace caqp;
using namespace caqp::bench;

int main(int argc, char** argv) {
  InitBench("fig12_synthetic", argc, argv);
  Banner("Figure 12: synthetic datasets (4 settings x sel sweep)");

  struct Setting {
    uint32_t gamma, n;
  };
  const Setting settings[] = {{1, 10}, {3, 10}, {1, 40}, {3, 40}};
  const double sels[] = {0.3, 0.5, 0.7, 0.9};

  std::vector<std::string> rows;
  for (const Setting& s : settings) {
    std::printf("\n--- Gamma=%u, n=%u ---\n", s.gamma, s.n);
    std::printf("%6s %10s %10s %12s %12s\n", "sel", "Naive", "CorrSeq",
                "Heuristic-5", "Heuristic-10");
    for (const double sel : sels) {
      SyntheticDataOptions opts;
      opts.n = s.n;
      opts.gamma = s.gamma;
      opts.sel = sel;
      opts.tuples = 16000;
      opts.seed = 1000 + s.gamma * 100 + s.n;
      const Dataset all = GenerateSyntheticData(opts);
      const auto [train, test] = all.SplitFraction(0.6);
      const Query query = SyntheticAllExpensiveQuery(all.schema());

      DatasetEstimator est(train);
      PerAttributeCostModel cm(all.schema());
      const SplitPointSet splits = SplitPointSet::AllPoints(all.schema());
      GreedySeqSolver greedyseq;

      NaivePlanner naive(est, cm);
      SequentialPlanner corrseq(est, cm, greedyseq, "CorrSeq");
      GreedyPlanner::Options gopts;
      gopts.split_points = &splits;
      gopts.seq_solver = &greedyseq;
      gopts.max_splits = 5;
      GreedyPlanner h5(est, cm, gopts);
      gopts.max_splits = 10;
      GreedyPlanner h10(est, cm, gopts);

      const std::vector<Query> qs = {query};
      const double c_naive =
          RunWorkload(naive, qs, train, test, cm)[0].test_cost;
      const double c_corr =
          RunWorkload(corrseq, qs, train, test, cm)[0].test_cost;
      const double c_h5 = RunWorkload(h5, qs, train, test, cm)[0].test_cost;
      const double c_h10 = RunWorkload(h10, qs, train, test, cm)[0].test_cost;

      std::printf("%6.2f %10.1f %10.1f %12.1f %12.1f\n", sel, c_naive, c_corr,
                  c_h5, c_h10);
      rows.push_back(std::to_string(s.gamma) + "," + std::to_string(s.n) +
                     "," + std::to_string(sel) + "," +
                     std::to_string(c_naive) + "," + std::to_string(c_corr) +
                     "," + std::to_string(c_h5) + "," + std::to_string(c_h10));
    }
  }
  WriteCsv("fig12_synthetic",
           "gamma,n,sel,naive,corrseq,heuristic5,heuristic10", rows);
  std::printf(
      "\nexpected shapes: Heuristic beats Naive/CorrSeq (often >2x);\n"
      "Gamma=1 -> Naive ~= CorrSeq; n=10 -> Heuristic-5 ~= Heuristic-10.\n");
  FinishBench();
  return 0;
}
