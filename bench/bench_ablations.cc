// Ablations beyond the paper's figures, covering the design choices called
// out in DESIGN.md:
//
//  A. Estimator choice (Section 7 "Graphical Models"): plan quality vs
//     training-set size for direct counting, the Chow-Liu tree model, and
//     the independence approximation. Expectation: Chow-Liu degrades
//     gracefully at small training sizes; independence never finds useful
//     splits.
//  B. Plan-size penalty (Section 2.4): sweeping alpha trades plan bytes for
//     execution cost.
//  C. Sequential base solver: OptSeq vs GreedySeq as GreedyPlan's leaf
//     planner -- quality vs planning time.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "data/synthetic_gen.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/optseq.h"
#include "plan/plan_serde.h"
#include "prob/chow_liu.h"
#include "prob/dataset_estimator.h"
#include "prob/independent_estimator.h"

using namespace caqp;
using namespace caqp::bench;

namespace {

Plan BuildWith(CondProbEstimator& est, const AcquisitionCostModel& cm,
               const SplitPointSet& splits, const SequentialSolver& solver,
               const Query& q, size_t max_splits) {
  GreedyPlanner::Options opts;
  opts.split_points = &splits;
  opts.seq_solver = &solver;
  opts.max_splits = max_splits;
  GreedyPlanner planner(est, cm, opts);
  return planner.BuildPlan(q);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench("ablations", argc, argv);
  Banner("Ablation A: estimator choice vs training-set size");
  {
    SyntheticDataOptions opts;
    opts.n = 10;
    opts.gamma = 4;
    opts.sel = 0.6;
    opts.tuples = 52000;
    const Dataset all = GenerateSyntheticData(opts);
    const auto [pool, test] = all.SplitAt(12000);
    const Query q = SyntheticAllExpensiveQuery(all.schema());
    PerAttributeCostModel cm(all.schema());
    const SplitPointSet splits = SplitPointSet::AllPoints(all.schema());
    GreedySeqSolver greedyseq;

    std::printf("%12s %12s %12s %12s\n", "train rows", "counting",
                "chow-liu", "independent");
    std::vector<std::string> rows;
    for (const size_t n : {50u, 150u, 500u, 2000u, 10000u}) {
      const Dataset train = pool.SplitAt(n).first;
      DatasetEstimator direct(train);
      ChowLiuEstimator::Options cl;
      cl.sample_count = 4096;
      ChowLiuEstimator smooth(train, cl);
      IndependentEstimator indep(train);

      const double c_direct = EmpiricalPlanCost(
          BuildWith(direct, cm, splits, greedyseq, q, 10), test, q, cm)
          .mean_cost;
      const double c_smooth = EmpiricalPlanCost(
          BuildWith(smooth, cm, splits, greedyseq, q, 10), test, q, cm)
          .mean_cost;
      const double c_indep = EmpiricalPlanCost(
          BuildWith(indep, cm, splits, greedyseq, q, 10), test, q, cm)
          .mean_cost;
      std::printf("%12zu %12.1f %12.1f %12.1f\n", n, c_direct, c_smooth,
                  c_indep);
      rows.push_back(std::to_string(n) + "," + std::to_string(c_direct) +
                     "," + std::to_string(c_smooth) + "," +
                     std::to_string(c_indep));
    }
    WriteCsv("ablation_estimator", "train_rows,counting,chowliu,independent",
             rows);
  }

  Banner("Ablation B: plan-size penalty alpha (Section 2.4)");
  {
    SyntheticDataOptions opts;
    opts.n = 12;
    opts.gamma = 3;
    opts.sel = 0.55;
    opts.tuples = 20000;
    const Dataset all = GenerateSyntheticData(opts);
    const auto [train, test] = all.SplitFraction(0.6);
    const Query q = SyntheticAllExpensiveQuery(all.schema());
    PerAttributeCostModel cm(all.schema());
    const SplitPointSet splits = SplitPointSet::AllPoints(all.schema());
    GreedySeqSolver greedyseq;
    DatasetEstimator est(train);

    std::printf("%10s %10s %12s %12s\n", "alpha", "splits", "plan bytes",
                "test cost");
    std::vector<std::string> rows;
    for (const double alpha : {0.0, 0.05, 0.2, 1.0, 5.0, 50.0}) {
      GreedyPlanner::Options gopts;
      gopts.split_points = &splits;
      gopts.seq_solver = &greedyseq;
      gopts.max_splits = 12;
      gopts.size_penalty_alpha = alpha;
      GreedyPlanner planner(est, cm, gopts);
      const Plan plan = planner.BuildPlan(q);
      const double cost = EmpiricalPlanCost(plan, test, q, cm).mean_cost;
      std::printf("%10.2f %10zu %12zu %12.1f\n", alpha, plan.NumSplits(),
                  PlanSizeBytes(plan), cost);
      rows.push_back(std::to_string(alpha) + "," +
                     std::to_string(plan.NumSplits()) + "," +
                     std::to_string(PlanSizeBytes(plan)) + "," +
                     std::to_string(cost));
    }
    WriteCsv("ablation_sizepenalty", "alpha,splits,plan_bytes,test_cost",
             rows);
  }

  Banner("Ablation C: OptSeq vs GreedySeq as the base solver");
  {
    SyntheticDataOptions opts;
    opts.n = 12;
    opts.gamma = 2;
    opts.sel = 0.6;
    opts.tuples = 20000;
    const Dataset all = GenerateSyntheticData(opts);
    const auto [train, test] = all.SplitFraction(0.6);
    const Query q = SyntheticAllExpensiveQuery(all.schema());  // 8 predicates
    PerAttributeCostModel cm(all.schema());
    const SplitPointSet splits = SplitPointSet::AllPoints(all.schema());
    DatasetEstimator est(train);

    std::printf("%12s %12s %14s\n", "base solver", "test cost",
                "plan time (ms)");
    std::vector<std::string> rows;
    OptSeqSolver optseq;
    GreedySeqSolver greedyseq;
    for (const auto& [name, solver] :
         {std::pair<const char*, const SequentialSolver*>{"OptSeq", &optseq},
          {"GreedySeq", &greedyseq}}) {
      const auto t0 = std::chrono::steady_clock::now();
      const Plan plan = BuildWith(est, cm, splits, *solver, q, 5);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double cost = EmpiricalPlanCost(plan, test, q, cm).mean_cost;
      std::printf("%12s %12.1f %14.1f\n", name, cost, ms);
      rows.push_back(std::string(name) + "," + std::to_string(cost) + "," +
                     std::to_string(ms));
    }
    WriteCsv("ablation_base_solver", "solver,test_cost,plan_ms", rows);
  }
  FinishBench();
  return 0;
}
