// Degradation-policy study under sensor faults: what do transient
// acquisition failures cost, and what does each DegradationPolicy buy back?
//
// Runs the garden workload (conditional plan trained on the train split)
// over the test split while a FaultInjector fails each acquisition attempt
// with probability 0%, 1%, 5% and 10%. For every rate each policy is
// measured against the fault-free baseline:
//
//   unknown   propagate Unknown unless remaining conjuncts decide the verdict
//   retry3    up to 3 attempts per acquisition, then degrade like unknown
//   abort     first failure aborts the epoch
//
// Reported per (rate, policy): fraction of tuples with a defined verdict,
// defined verdicts that disagree with ground truth (must be 0 — degradation
// may lose answers, never corrupt them), retries per tuple, acquisition
// cost per tuple, and the energy overhead vs the no-fault run.
//
// --json-out <path> writes the obs metrics registry (bench_util.h);
// results/bench_fault.csv gets one row per (rate, policy).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/garden_gen.h"
#include "exec/executor.h"
#include "fault/fault.h"
#include "obs/registry.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/split_points.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

namespace {

constexpr uint64_t kFaultSeed = 20050405;
constexpr size_t kMaxTuples = 8000;

struct PolicyRun {
  std::string name;
  DegradationPolicy policy;
};

struct RunStats {
  size_t tuples = 0;
  size_t defined = 0;
  size_t mismatches = 0;  ///< defined verdicts disagreeing with ground truth
  size_t retries = 0;
  size_t aborted = 0;
  double cost = 0.0;
  uint64_t injected = 0;
};

/// Executes `plan` over every test tuple with faults at `transient_rate`,
/// using one injector for the whole pass (faults accumulate across epochs,
/// as they would on a live mote).
RunStats RunPass(const Plan& plan, const Schema& schema,
                 const AcquisitionCostModel& cm, const Query& query,
                 const Dataset& test, double transient_rate,
                 const DegradationPolicy& policy) {
  FaultSpec spec;
  spec.transient = transient_rate;
  spec.seed = kFaultSeed;
  FaultInjector injector(spec);

  RunStats out;
  const size_t rows = std::min<size_t>(kMaxTuples, test.num_rows());
  for (size_t row = 0; row < rows; ++row) {
    const Tuple tuple = test.GetTuple(static_cast<RowId>(row));
    TupleSource base(tuple);
    FaultyAcquisitionSource source(base, injector);
    const ExecutionResult res =
        ExecutePlan(plan, schema, cm, source, /*trace=*/nullptr, policy);
    ++out.tuples;
    out.cost += res.cost;
    out.retries += static_cast<size_t>(res.retries);
    out.aborted += res.aborted;
    if (res.defined()) {
      ++out.defined;
      out.mismatches += res.verdict != query.Matches(tuple);
    }
  }
  out.injected = injector.injected();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench("bench_fault", argc, argv);

  GardenDataOptions dopts;
  dopts.num_motes = 3;
  dopts.epochs = 20000;
  const Dataset data = GenerateGardenData(dopts);
  const Schema& schema = data.schema();
  const auto [train, test] = data.SplitFraction(0.6);
  const GardenAttrs attrs = ResolveGardenAttrs(schema);

  Conjunct preds;
  for (AttrId a : attrs.temperature) preds.emplace_back(a, 5, 11);
  for (AttrId a : attrs.humidity) preds.emplace_back(a, 5, 11);
  const Query query = Query::Conjunction(std::move(preds));

  DatasetEstimator estimator(train);
  PerAttributeCostModel cost_model(schema);
  const SplitPointSet splits = SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes()));
  GreedySeqSolver greedyseq;
  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &greedyseq;
  gopts.max_splits = 5;
  GreedyPlanner planner(estimator, cost_model, gopts);
  const Plan plan = planner.BuildPlan(query);

  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.10};
  const std::vector<PolicyRun> policies = {
      {"unknown", DegradationPolicy::UnknownVerdict()},
      {"retry3", DegradationPolicy::Retry(3)},
      {"abort", DegradationPolicy::Abort()},
  };

  bench::Banner("degradation policies under transient faults (garden)");
  std::printf("%-6s %-8s %9s %10s %12s %10s %9s\n", "rate", "policy",
              "defined%", "mismatch", "retries/tup", "cost/tup", "overhead");

  // The 0% x unknown pass is the fault-free baseline everything is
  // normalized against (all policies are identical when nothing fails).
  double baseline_cost_per_tuple = 0.0;
  std::vector<std::string> csv_rows;
  size_t total_mismatches = 0;
  for (double rate : rates) {
    for (const PolicyRun& pr : policies) {
      if (rate == 0.0 && pr.name != "unknown") continue;
      const RunStats st = RunPass(plan, schema, cost_model, query, test, rate,
                                  pr.policy);
      const double n = static_cast<double>(st.tuples);
      const double cost_per_tuple = st.cost / n;
      if (rate == 0.0) baseline_cost_per_tuple = cost_per_tuple;
      const double defined_pct =
          100.0 * static_cast<double>(st.defined) / n;
      const double overhead = cost_per_tuple / baseline_cost_per_tuple;
      total_mismatches += st.mismatches;
      std::printf("%-6.2f %-8s %8.2f%% %10zu %12.3f %10.1f %8.2fx\n", rate,
                  pr.name.c_str(), defined_pct, st.mismatches,
                  static_cast<double>(st.retries) / n, cost_per_tuple,
                  overhead);
      char row[256];
      std::snprintf(row, sizeof(row), "%.2f,%s,%.4f,%zu,%.4f,%.2f,%.4f",
                    rate, pr.name.c_str(), defined_pct / 100.0,
                    st.mismatches, static_cast<double>(st.retries) / n,
                    cost_per_tuple, overhead);
      csv_rows.emplace_back(row);
      // Dynamic metric names, so bypass the per-call-site macro cache.
      const std::string prefix =
          "bench.fault." + pr.name + "." +
          std::to_string(static_cast<int>(rate * 100 + 0.5));
      obs::DefaultRegistry()
          .GetGauge(prefix + ".defined_fraction")
          .Set(defined_pct / 100.0);
      obs::DefaultRegistry().GetGauge(prefix + ".cost_overhead").Set(overhead);
    }
  }
  bench::WriteCsv("bench_fault",
                  "rate,policy,defined_fraction,mismatches,retries_per_tuple,"
                  "cost_per_tuple,cost_overhead",
                  csv_rows);

  std::printf("\ndegradation never corrupts: %zu defined-verdict "
              "mismatches across all runs%s\n",
              total_mismatches, total_mismatches == 0 ? " (PASS)" : " (FAIL)");
  bench::FinishBench();
  return total_mismatches == 0 ? 0 : 1;
}
