// Figure 9: detailed plan study. The paper's example query asks for tuples
// that are bright, cool and dry ("someone working in the lab at night") and
// shows the conditional plan: it conditions on the hour first, brings in a
// nodeid split separating the night-active part of the lab, and samples
// humidity first late at night. We print our planner's tree for the same
// query and report its gain over Naive (paper: ~20%).

#include <cstdio>

#include "bench_util.h"
#include "lab_config.h"
#include "opt/greedy_plan.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "plan/plan_printer.h"
#include "prob/dataset_estimator.h"

using namespace caqp;
using namespace caqp::bench;

int main(int argc, char** argv) {
  InitBench("fig9_plan_study", argc, argv);
  Banner("Figure 9: plan case study (bright, cool, dry)");

  LabSetup lab = MakeFullLab();
  const Schema& schema = lab.train.schema();
  DatasetEstimator est(lab.train);
  PerAttributeCostModel cm(schema);

  // Bright (lamp-level light), cool, dry.
  const Query query = Query::Conjunction({
      Predicate(lab.attrs.light, 5, 15),
      Predicate(lab.attrs.temperature, 0, 7),
      Predicate(lab.attrs.humidity, 0, 7),
  });
  std::printf("query: %s\n\n", query.ToString(schema).c_str());

  const SplitPointSet splits = SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &optseq;
  gopts.max_splits = 8;
  GreedyPlanner heuristic(est, cm, gopts);
  NaivePlanner naive(est, cm);

  const Plan plan = heuristic.BuildPlan(query);
  const Plan p_naive = naive.BuildPlan(query);
  std::printf("conditional plan (%s):\n%s\n", PlanSummary(plan).c_str(),
              PrintPlan(plan, schema).c_str());

  const auto r_cond = EmpiricalPlanCost(plan, lab.test, query, cm);
  const auto r_naive = EmpiricalPlanCost(p_naive, lab.test, query, cm);
  std::printf("test cost: conditional=%.2f naive=%.2f -> %.1f%% gain "
              "(paper: ~20%%)\n",
              r_cond.mean_cost, r_naive.mean_cost,
              100.0 * (1.0 - r_cond.mean_cost / r_naive.mean_cost));
  std::printf("verdict errors: %zu\n", r_cond.verdict_errors);

  WriteCsv("fig9_plan_study", "plan,test_cost",
           {"conditional," + std::to_string(r_cond.mean_cost),
            "naive," + std::to_string(r_naive.mean_cost)});
  FinishBench();
  return 0;
}
