// Figure 11: Garden-11 dataset -- 34 attributes, 22-predicate queries. The
// paper reports even larger improvements than Garden-5, up to a factor of 4
// over Naive for some queries.

#include "garden_runner.h"

using namespace caqp::bench;

int main(int argc, char** argv) {
  InitBench("fig11_garden11", argc, argv);
  Banner("Figure 11: Garden-11 (34 attributes, 22-predicate queries)");
  GardenBenchConfig cfg;
  cfg.num_motes = 11;
  cfg.epochs = 12000;
  cfg.num_queries = 40;   // paper: 90; reduced for bench runtime
  cfg.max_splits = 5;
  cfg.csv_name = "fig11_garden11";
  RunGardenBench(cfg);
  std::printf("\nexpected shape: larger gains than Garden-5; multi-x factors\n"
              "over Naive in the tail of the distribution.\n");
  FinishBench();
  return 0;
}
