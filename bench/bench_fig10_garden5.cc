// Figure 10: Garden-5 dataset -- 90 queries of 10 identical-range predicates
// (temperature + humidity over all 5 motes, randomly negated). The paper
// shows Heuristic beating both Naive and CorrSeq on most queries, with only
// negligible (<10%) regressions caused by train/test distribution drift.

#include "garden_runner.h"

using namespace caqp::bench;

int main(int argc, char** argv) {
  InitBench("fig10_garden5", argc, argv);
  Banner("Figure 10: Garden-5 (16 attributes, 10-predicate queries)");
  GardenBenchConfig cfg;
  cfg.num_motes = 5;
  cfg.epochs = 20000;
  cfg.num_queries = 90;
  cfg.max_splits = 5;
  cfg.csv_name = "fig10_garden5";
  RunGardenBench(cfg);
  std::printf("\nexpected shape: Heuristic <= CorrSeq <= Naive for most\n"
              "queries; regressions small and rare.\n");
  FinishBench();
  return 0;
}
