# Empty dependencies file for greedy_plan_test.
# This may be replaced when dependencies are built.
