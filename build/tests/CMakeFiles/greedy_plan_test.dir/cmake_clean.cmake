file(REMOVE_RECURSE
  "CMakeFiles/greedy_plan_test.dir/greedy_plan_test.cc.o"
  "CMakeFiles/greedy_plan_test.dir/greedy_plan_test.cc.o.d"
  "greedy_plan_test"
  "greedy_plan_test.pdb"
  "greedy_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
