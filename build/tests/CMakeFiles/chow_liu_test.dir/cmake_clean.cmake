file(REMOVE_RECURSE
  "CMakeFiles/chow_liu_test.dir/chow_liu_test.cc.o"
  "CMakeFiles/chow_liu_test.dir/chow_liu_test.cc.o.d"
  "chow_liu_test"
  "chow_liu_test.pdb"
  "chow_liu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chow_liu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
