# Empty dependencies file for chow_liu_test.
# This may be replaced when dependencies are built.
