file(REMOVE_RECURSE
  "CMakeFiles/plan_verify_test.dir/plan_verify_test.cc.o"
  "CMakeFiles/plan_verify_test.dir/plan_verify_test.cc.o.d"
  "plan_verify_test"
  "plan_verify_test.pdb"
  "plan_verify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_verify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
