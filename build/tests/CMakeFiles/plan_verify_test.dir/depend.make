# Empty dependencies file for plan_verify_test.
# This may be replaced when dependencies are built.
