file(REMOVE_RECURSE
  "CMakeFiles/independent_estimator_test.dir/independent_estimator_test.cc.o"
  "CMakeFiles/independent_estimator_test.dir/independent_estimator_test.cc.o.d"
  "independent_estimator_test"
  "independent_estimator_test.pdb"
  "independent_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/independent_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
