# Empty dependencies file for independent_estimator_test.
# This may be replaced when dependencies are built.
