file(REMOVE_RECURSE
  "CMakeFiles/dataset_estimator_test.dir/dataset_estimator_test.cc.o"
  "CMakeFiles/dataset_estimator_test.dir/dataset_estimator_test.cc.o.d"
  "dataset_estimator_test"
  "dataset_estimator_test.pdb"
  "dataset_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
