# Empty dependencies file for subproblem_test.
# This may be replaced when dependencies are built.
