file(REMOVE_RECURSE
  "CMakeFiles/subproblem_test.dir/subproblem_test.cc.o"
  "CMakeFiles/subproblem_test.dir/subproblem_test.cc.o.d"
  "subproblem_test"
  "subproblem_test.pdb"
  "subproblem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subproblem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
