# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/independent_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/chow_liu_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/plan_cost_test[1]_include.cmake")
include("/root/repo/build/tests/sequential_test[1]_include.cmake")
include("/root/repo/build/tests/exhaustive_test[1]_include.cmake")
include("/root/repo/build/tests/greedy_plan_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/plan_verify_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_io_test[1]_include.cmake")
include("/root/repo/build/tests/subproblem_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
