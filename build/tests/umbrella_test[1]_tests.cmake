add_test([=[UmbrellaTest.QuickstartFlowWorks]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=UmbrellaTest.QuickstartFlowWorks]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaTest.QuickstartFlowWorks]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS UmbrellaTest.QuickstartFlowWorks)
