# Empty dependencies file for caqp.
# This may be replaced when dependencies are built.
