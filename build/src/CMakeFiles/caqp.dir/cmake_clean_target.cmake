file(REMOVE_RECURSE
  "libcaqp.a"
)
