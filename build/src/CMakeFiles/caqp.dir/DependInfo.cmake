
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/caqp.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/caqp.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/caqp.dir/common/status.cc.o" "gcc" "src/CMakeFiles/caqp.dir/common/status.cc.o.d"
  "/root/repo/src/core/csv.cc" "src/CMakeFiles/caqp.dir/core/csv.cc.o" "gcc" "src/CMakeFiles/caqp.dir/core/csv.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/CMakeFiles/caqp.dir/core/dataset.cc.o" "gcc" "src/CMakeFiles/caqp.dir/core/dataset.cc.o.d"
  "/root/repo/src/core/dataset_io.cc" "src/CMakeFiles/caqp.dir/core/dataset_io.cc.o" "gcc" "src/CMakeFiles/caqp.dir/core/dataset_io.cc.o.d"
  "/root/repo/src/core/discretizer.cc" "src/CMakeFiles/caqp.dir/core/discretizer.cc.o" "gcc" "src/CMakeFiles/caqp.dir/core/discretizer.cc.o.d"
  "/root/repo/src/core/predicate.cc" "src/CMakeFiles/caqp.dir/core/predicate.cc.o" "gcc" "src/CMakeFiles/caqp.dir/core/predicate.cc.o.d"
  "/root/repo/src/core/query.cc" "src/CMakeFiles/caqp.dir/core/query.cc.o" "gcc" "src/CMakeFiles/caqp.dir/core/query.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/caqp.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/caqp.dir/core/schema.cc.o.d"
  "/root/repo/src/data/garden_gen.cc" "src/CMakeFiles/caqp.dir/data/garden_gen.cc.o" "gcc" "src/CMakeFiles/caqp.dir/data/garden_gen.cc.o.d"
  "/root/repo/src/data/lab_gen.cc" "src/CMakeFiles/caqp.dir/data/lab_gen.cc.o" "gcc" "src/CMakeFiles/caqp.dir/data/lab_gen.cc.o.d"
  "/root/repo/src/data/synthetic_gen.cc" "src/CMakeFiles/caqp.dir/data/synthetic_gen.cc.o" "gcc" "src/CMakeFiles/caqp.dir/data/synthetic_gen.cc.o.d"
  "/root/repo/src/data/workload.cc" "src/CMakeFiles/caqp.dir/data/workload.cc.o" "gcc" "src/CMakeFiles/caqp.dir/data/workload.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/caqp.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/caqp.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/metrics.cc" "src/CMakeFiles/caqp.dir/exec/metrics.cc.o" "gcc" "src/CMakeFiles/caqp.dir/exec/metrics.cc.o.d"
  "/root/repo/src/net/basestation.cc" "src/CMakeFiles/caqp.dir/net/basestation.cc.o" "gcc" "src/CMakeFiles/caqp.dir/net/basestation.cc.o.d"
  "/root/repo/src/net/mote.cc" "src/CMakeFiles/caqp.dir/net/mote.cc.o" "gcc" "src/CMakeFiles/caqp.dir/net/mote.cc.o.d"
  "/root/repo/src/net/radio.cc" "src/CMakeFiles/caqp.dir/net/radio.cc.o" "gcc" "src/CMakeFiles/caqp.dir/net/radio.cc.o.d"
  "/root/repo/src/opt/adaptive.cc" "src/CMakeFiles/caqp.dir/opt/adaptive.cc.o" "gcc" "src/CMakeFiles/caqp.dir/opt/adaptive.cc.o.d"
  "/root/repo/src/opt/cost_model.cc" "src/CMakeFiles/caqp.dir/opt/cost_model.cc.o" "gcc" "src/CMakeFiles/caqp.dir/opt/cost_model.cc.o.d"
  "/root/repo/src/opt/exhaustive.cc" "src/CMakeFiles/caqp.dir/opt/exhaustive.cc.o" "gcc" "src/CMakeFiles/caqp.dir/opt/exhaustive.cc.o.d"
  "/root/repo/src/opt/greedy_plan.cc" "src/CMakeFiles/caqp.dir/opt/greedy_plan.cc.o" "gcc" "src/CMakeFiles/caqp.dir/opt/greedy_plan.cc.o.d"
  "/root/repo/src/opt/greedyseq.cc" "src/CMakeFiles/caqp.dir/opt/greedyseq.cc.o" "gcc" "src/CMakeFiles/caqp.dir/opt/greedyseq.cc.o.d"
  "/root/repo/src/opt/naive.cc" "src/CMakeFiles/caqp.dir/opt/naive.cc.o" "gcc" "src/CMakeFiles/caqp.dir/opt/naive.cc.o.d"
  "/root/repo/src/opt/optseq.cc" "src/CMakeFiles/caqp.dir/opt/optseq.cc.o" "gcc" "src/CMakeFiles/caqp.dir/opt/optseq.cc.o.d"
  "/root/repo/src/opt/planner.cc" "src/CMakeFiles/caqp.dir/opt/planner.cc.o" "gcc" "src/CMakeFiles/caqp.dir/opt/planner.cc.o.d"
  "/root/repo/src/opt/split_points.cc" "src/CMakeFiles/caqp.dir/opt/split_points.cc.o" "gcc" "src/CMakeFiles/caqp.dir/opt/split_points.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/caqp.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/caqp.dir/plan/plan.cc.o.d"
  "/root/repo/src/plan/plan_cost.cc" "src/CMakeFiles/caqp.dir/plan/plan_cost.cc.o" "gcc" "src/CMakeFiles/caqp.dir/plan/plan_cost.cc.o.d"
  "/root/repo/src/plan/plan_printer.cc" "src/CMakeFiles/caqp.dir/plan/plan_printer.cc.o" "gcc" "src/CMakeFiles/caqp.dir/plan/plan_printer.cc.o.d"
  "/root/repo/src/plan/plan_serde.cc" "src/CMakeFiles/caqp.dir/plan/plan_serde.cc.o" "gcc" "src/CMakeFiles/caqp.dir/plan/plan_serde.cc.o.d"
  "/root/repo/src/plan/plan_verify.cc" "src/CMakeFiles/caqp.dir/plan/plan_verify.cc.o" "gcc" "src/CMakeFiles/caqp.dir/plan/plan_verify.cc.o.d"
  "/root/repo/src/prob/chow_liu.cc" "src/CMakeFiles/caqp.dir/prob/chow_liu.cc.o" "gcc" "src/CMakeFiles/caqp.dir/prob/chow_liu.cc.o.d"
  "/root/repo/src/prob/dataset_estimator.cc" "src/CMakeFiles/caqp.dir/prob/dataset_estimator.cc.o" "gcc" "src/CMakeFiles/caqp.dir/prob/dataset_estimator.cc.o.d"
  "/root/repo/src/prob/histogram.cc" "src/CMakeFiles/caqp.dir/prob/histogram.cc.o" "gcc" "src/CMakeFiles/caqp.dir/prob/histogram.cc.o.d"
  "/root/repo/src/prob/independent_estimator.cc" "src/CMakeFiles/caqp.dir/prob/independent_estimator.cc.o" "gcc" "src/CMakeFiles/caqp.dir/prob/independent_estimator.cc.o.d"
  "/root/repo/src/prob/subproblem.cc" "src/CMakeFiles/caqp.dir/prob/subproblem.cc.o" "gcc" "src/CMakeFiles/caqp.dir/prob/subproblem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
