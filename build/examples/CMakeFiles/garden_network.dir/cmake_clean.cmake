file(REMOVE_RECURSE
  "CMakeFiles/garden_network.dir/garden_network.cc.o"
  "CMakeFiles/garden_network.dir/garden_network.cc.o.d"
  "garden_network"
  "garden_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/garden_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
