# Empty dependencies file for garden_network.
# This may be replaced when dependencies are built.
