file(REMOVE_RECURSE
  "CMakeFiles/web_acquisition.dir/web_acquisition.cc.o"
  "CMakeFiles/web_acquisition.dir/web_acquisition.cc.o.d"
  "web_acquisition"
  "web_acquisition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_acquisition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
