# Empty compiler generated dependencies file for web_acquisition.
# This may be replaced when dependencies are built.
