# Empty dependencies file for compressed_db.
# This may be replaced when dependencies are built.
