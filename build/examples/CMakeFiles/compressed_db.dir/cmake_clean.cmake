file(REMOVE_RECURSE
  "CMakeFiles/compressed_db.dir/compressed_db.cc.o"
  "CMakeFiles/compressed_db.dir/compressed_db.cc.o.d"
  "compressed_db"
  "compressed_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
