file(REMOVE_RECURSE
  "CMakeFiles/adaptive_stream.dir/adaptive_stream.cc.o"
  "CMakeFiles/adaptive_stream.dir/adaptive_stream.cc.o.d"
  "adaptive_stream"
  "adaptive_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
