# Empty compiler generated dependencies file for exists_query.
# This may be replaced when dependencies are built.
