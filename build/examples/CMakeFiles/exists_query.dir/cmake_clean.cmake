file(REMOVE_RECURSE
  "CMakeFiles/exists_query.dir/exists_query.cc.o"
  "CMakeFiles/exists_query.dir/exists_query.cc.o.d"
  "exists_query"
  "exists_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exists_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
