# Empty compiler generated dependencies file for bench_fig9_plan_study.
# This may be replaced when dependencies are built.
