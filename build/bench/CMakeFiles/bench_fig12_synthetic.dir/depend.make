# Empty dependencies file for bench_fig12_synthetic.
# This may be replaced when dependencies are built.
