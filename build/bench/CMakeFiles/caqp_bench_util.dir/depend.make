# Empty dependencies file for caqp_bench_util.
# This may be replaced when dependencies are built.
