file(REMOVE_RECURSE
  "CMakeFiles/caqp_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/caqp_bench_util.dir/bench_util.cc.o.d"
  "libcaqp_bench_util.a"
  "libcaqp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caqp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
