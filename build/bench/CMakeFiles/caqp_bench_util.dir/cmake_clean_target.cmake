file(REMOVE_RECURSE
  "libcaqp_bench_util.a"
)
