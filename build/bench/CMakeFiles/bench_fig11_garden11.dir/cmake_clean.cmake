file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_garden11.dir/bench_fig11_garden11.cc.o"
  "CMakeFiles/bench_fig11_garden11.dir/bench_fig11_garden11.cc.o.d"
  "bench_fig11_garden11"
  "bench_fig11_garden11.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_garden11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
