# Empty dependencies file for bench_fig8a_lab_quality.
# This may be replaced when dependencies are built.
