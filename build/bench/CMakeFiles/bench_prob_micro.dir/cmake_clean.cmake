file(REMOVE_RECURSE
  "CMakeFiles/bench_prob_micro.dir/bench_prob_micro.cc.o"
  "CMakeFiles/bench_prob_micro.dir/bench_prob_micro.cc.o.d"
  "bench_prob_micro"
  "bench_prob_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prob_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
