file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_garden5.dir/bench_fig10_garden5.cc.o"
  "CMakeFiles/bench_fig10_garden5.dir/bench_fig10_garden5.cc.o.d"
  "bench_fig10_garden5"
  "bench_fig10_garden5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_garden5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
