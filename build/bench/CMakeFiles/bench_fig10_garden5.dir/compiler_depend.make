# Empty compiler generated dependencies file for bench_fig10_garden5.
# This may be replaced when dependencies are built.
