file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8c_cumfreq.dir/bench_fig8c_cumfreq.cc.o"
  "CMakeFiles/bench_fig8c_cumfreq.dir/bench_fig8c_cumfreq.cc.o.d"
  "bench_fig8c_cumfreq"
  "bench_fig8c_cumfreq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8c_cumfreq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
