# Empty dependencies file for bench_fig8c_cumfreq.
# This may be replaced when dependencies are built.
