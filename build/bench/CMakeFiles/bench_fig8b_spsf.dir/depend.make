# Empty dependencies file for bench_fig8b_spsf.
# This may be replaced when dependencies are built.
