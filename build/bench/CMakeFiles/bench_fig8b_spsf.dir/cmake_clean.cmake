file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_spsf.dir/bench_fig8b_spsf.cc.o"
  "CMakeFiles/bench_fig8b_spsf.dir/bench_fig8b_spsf.cc.o.d"
  "bench_fig8b_spsf"
  "bench_fig8b_spsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_spsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
