file(REMOVE_RECURSE
  "CMakeFiles/caqp_simulate.dir/caqp_simulate.cc.o"
  "CMakeFiles/caqp_simulate.dir/caqp_simulate.cc.o.d"
  "caqp_simulate"
  "caqp_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caqp_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
