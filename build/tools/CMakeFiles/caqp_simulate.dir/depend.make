# Empty dependencies file for caqp_simulate.
# This may be replaced when dependencies are built.
