# Empty dependencies file for caqp_plan.
# This may be replaced when dependencies are built.
