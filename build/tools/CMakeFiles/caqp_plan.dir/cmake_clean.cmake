file(REMOVE_RECURSE
  "CMakeFiles/caqp_plan.dir/caqp_plan.cc.o"
  "CMakeFiles/caqp_plan.dir/caqp_plan.cc.o.d"
  "caqp_plan"
  "caqp_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caqp_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
