#!/usr/bin/env python3
"""Enforce bench acceptance bars from a --json-out metrics file.

The benches already gate their own exit codes, but those gates live inside
C++ and are invisible to reviewers; this script makes the bars explicit,
greppable, and reusable against any committed baseline:

    scripts/check_bench_bars.py bench_exec.json
    scripts/check_bench_bars.py bench_exec.json --baseline BENCH_exec.json

Default bars (the executor bench):

    bench_exec.speedup        >= 1.5   flat CompiledPlan vs tree walk
    bench_exec.batch_speedup  >= 4.0   columnar batch vs flat per-tuple
    bench_exec.hot_path_clones == 0    cached serving clones no PlanNodes

Custom bars: --min gauge:value (repeatable), --zero gauge (repeatable)
replace the defaults entirely when given.

Baseline comparison prints per-gauge deltas against the committed numbers;
it is informational by default because CI hardware differs from the machine
that produced the baseline. Pass --max-regress 0.5 to additionally fail if
a speedup-style gauge (anything ending in "speedup" or "_rps") drops below
that fraction of the baseline.

Exit code: 0 iff every bar (and, if requested, every regression check)
holds. Stdlib only.
"""

import argparse
import json
import sys


def load_gauges(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics", doc)
    gauges = dict(metrics.get("gauges", {}))
    # Counters can serve as bars too (e.g. plan.node_clones).
    for name, value in metrics.get("counters", {}).items():
        gauges.setdefault(name, value)
    # Current exports emit canonical snake_case names plus an aliases map
    # (legacy -> canonical); resolve the legacy keys too so bars and old
    # baselines written against dotted names keep working for one release.
    for legacy, canonical in metrics.get("aliases", {}).items():
        if canonical in gauges:
            gauges.setdefault(legacy, gauges[canonical])
    return gauges


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="bench --json-out file to check")
    parser.add_argument("--baseline", help="committed baseline json to diff")
    parser.add_argument(
        "--min", action="append", default=[], metavar="GAUGE:VALUE",
        help="bar: gauge must be >= value (replaces default bars)")
    parser.add_argument(
        "--zero", action="append", default=[], metavar="GAUGE",
        help="bar: gauge must be exactly 0 (replaces default bars)")
    parser.add_argument(
        "--max-regress", type=float, default=None, metavar="FRACTION",
        help="fail if a speedup/_rps gauge falls below FRACTION * baseline")
    args = parser.parse_args()

    mins = [(name, float(value)) for spec in args.min
            for name, value in [spec.rsplit(":", 1)]]
    zeros = list(args.zero)
    if not mins and not zeros:
        mins = [("bench_exec.speedup", 1.5),
                ("bench_exec.batch_speedup", 4.0)]
        zeros = ["bench_exec.hot_path_clones"]

    gauges = load_gauges(args.results)
    failures = []

    for name, bar in mins:
        value = gauges.get(name)
        if value is None:
            failures.append(f"missing gauge {name}")
            continue
        status = "ok" if value >= bar else "FAIL"
        print(f"{status:>4}  {name} = {value:.4g}  (bar: >= {bar:g})")
        if value < bar:
            failures.append(f"{name} = {value:.4g} < {bar:g}")
    for name in zeros:
        value = gauges.get(name)
        if value is None:
            failures.append(f"missing gauge {name}")
            continue
        status = "ok" if value == 0 else "FAIL"
        print(f"{status:>4}  {name} = {value:g}  (bar: == 0)")
        if value != 0:
            failures.append(f"{name} = {value:g} != 0")

    if args.baseline:
        base = load_gauges(args.baseline)
        print(f"\nvs baseline {args.baseline}:")
        for name in sorted(set(gauges) & set(base)):
            cur, ref = gauges[name], base[name]
            if not isinstance(cur, (int, float)) or not ref:
                continue
            ratio = cur / ref
            print(f"      {name}: {cur:.4g} vs {ref:.4g}  ({ratio:.2f}x)")
            if (args.max_regress is not None
                    and (name.endswith("speedup") or name.endswith("_rps"))
                    and ratio < args.max_regress):
                failures.append(
                    f"{name} regressed to {ratio:.2f}x of baseline "
                    f"(floor {args.max_regress:g}x)")

    if failures:
        print("\nbench bars FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nall bench bars hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
