#!/usr/bin/env bash
# Verification gate: tier-1 build + full test suite, then a second build
# with AddressSanitizer + UBSan (-DCAQP_SANITIZE=ON) re-running the tests
# (including the fault-injection and serde byte-mutation fuzz suites, where
# ASan catches OOB reads the Status paths might otherwise hide), then a
# ThreadSanitizer build (-DCAQP_SANITIZE=thread) running the
# concurrency-sensitive suites (caqp::serve incl. deadline/shedding paths,
# the caqp::dist coordinator/shard scatter-gather suites, the adaptive
# replanner, the obs v2 span/histogram/shard/flight-recorder suites, the
# calibration aggregator and drift-policy suites, the regret-planner and
# uncertainty-box suites incl. the widen-mode drift loop, the columnar
# batch-executor differential and shared-profile concurrency suites, and
# the PR 10 telemetry suites — exposer scrapes, SLO burn recording, and the
# shard-flapping calibration/trace-join stress tests) plus the fault
# suites again.
# Usage: scripts/check.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

skip_san=0
[[ "${1:-}" == "--skip-sanitizers" ]] && skip_san=1

echo "== tier-1: regular build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$skip_san" == 1 ]]; then
  echo "== sanitizers skipped =="
  exit 0
fi

echo "== ASan/UBSan build + ctest (incl. fault + serde-fuzz suites) =="
cmake -B build-asan -S . -DCAQP_SANITIZE=ON
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j "$(nproc)"

echo "== TSan build + concurrency and fault suites =="
cmake -B build-tsan -S . -DCAQP_SANITIZE=thread
cmake --build build-tsan -j
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R '^Serve|^Dist|^Adaptive|^Fault|^SerdeFuzz|^CompiledPlan|^Span|^Histogram|^ShardedRegistry|^FlightRecorder|^Calibration|^Drift|^Regret|^BatchExec|^Telemetry'

echo "== all checks passed =="
