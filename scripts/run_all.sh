#!/usr/bin/env bash
# Builds everything, runs the full test suite and every figure benchmark,
# and records the outputs the repository's EXPERIMENTS.md refers to.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/bench_*; do "$b"; done 2>&1 | tee bench_output.txt
echo "done: see test_output.txt, bench_output.txt and results/*.csv"
