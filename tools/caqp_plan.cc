// caqp_plan: command-line planner. Loads a CSV of historical readings,
// builds a conditional plan for a conjunctive range query, explains it, and
// reports train/test costs against the Naive baseline.
//
// Example:
//   caqp_plan --csv lab.csv --attr hour:24:1 --attr light:16:100
//     --attr temp:16:100 --where light:5:15 --where temp:0:7
//     --planner heuristic --max-splits 5 --train-frac 0.6 --explain
//
// Planners: naive | corrseq | heuristic | exhaustive | regret. The regret
// planner wraps the heuristic point plan in a minmax-regret sweep over a
// symmetric --uncertainty=eps box (opt/regret.h).
//
// Run `caqp_plan --help` for the full grouped flag listing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/csv.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "opt/exhaustive.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "opt/regret.h"
#include "opt/uncertainty.h"
#include "plan/plan_cost.h"
#include "plan/plan_printer.h"
#include "plan/plan_serde.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

namespace {

struct WhereSpec {
  std::string name;
  Value lo = 0;
  Value hi = 0;
  bool negated = false;
};

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "caqp_plan: %s\n", msg.c_str());
  std::exit(1);
}

std::vector<std::string> SplitColon(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(':', start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

long ParseLong(const std::string& s, const std::string& what) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') Die("bad " + what + ": '" + s + "'");
  return v;
}

void PrintHelp() {
  std::printf(
      "caqp_plan: build a conditional plan for a conjunctive range query\n"
      "over a CSV of historical readings, explain it, and report train/test\n"
      "costs against the Naive baseline.\n"
      "\n"
      "input\n"
      "  --csv PATH            CSV of historical readings (required)\n"
      "  --attr NAME:BINS:COST discretization + acquisition cost per column\n"
      "                        (required, repeatable)\n"
      "  --where NAME:LO:HI[:not]  conjunctive range predicate over\n"
      "                        discretized bins (required, repeatable)\n"
      "  --train-frac F        head fraction used for training (default 0.6)\n"
      "\n"
      "planning\n"
      "  --planner P           naive | corrseq | heuristic | exhaustive |\n"
      "                        regret (default heuristic)\n"
      "  --max-splits K        heuristic split budget (default 5)\n"
      "  --spsf LOG10          split-point budget (default: all points)\n"
      "\n"
      "robustness\n"
      "  --uncertainty EPS     plan under a symmetric +-EPS pass-probability\n"
      "                        uncertainty box; with --planner regret the\n"
      "                        plan minimizes worst-case regret over the\n"
      "                        box's corners (EPS 0 reproduces the point\n"
      "                        plan; also accepts --uncertainty=EPS)\n"
      "\n"
      "output\n"
      "  --explain             annotate the plan with reach/cost estimates\n"
      "  --emit tree|flat      pretty tree (default) or the compiled flat\n"
      "                        IR, one node per line (also --emit=flat)\n"
      "  --trace-out PATH      JSONL execution trace of the test run: one\n"
      "                        line per tuple plus a summary line with\n"
      "                        per-attribute acquisition histograms\n");
}

/// TraceSink that writes one JSON line per executed tuple: the acquisition
/// order with per-attribute marginal costs, the branch path through the
/// split tree, and the final verdict.
class JsonlTraceSink : public TraceSink {
 public:
  JsonlTraceSink(std::ofstream& out, const Schema& schema)
      : out_(out), schema_(schema) {}

  void OnAcquire(AttrId attr, Value value, double marginal_cost) override {
    acquisitions_.push_back({attr, value, marginal_cost});
  }
  void OnBranch(AttrId attr, Value split_value, bool went_ge) override {
    branches_.push_back({attr, split_value, went_ge});
  }
  void OnVerdict(bool verdict, double total_cost) override {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("tuple").UInt(tuple_++);
    w.Key("acquisitions").BeginArray();
    for (const TraceAcquisition& a : acquisitions_) {
      w.BeginObject();
      w.Key("attr").String(schema_.name(a.attr));
      w.Key("value").UInt(a.value);
      w.Key("cost").Double(a.cost);
      w.EndObject();
    }
    w.EndArray();
    w.Key("branches").BeginArray();
    for (const TraceBranch& b : branches_) {
      w.BeginObject();
      w.Key("attr").String(schema_.name(b.attr));
      w.Key("split_value").UInt(b.split_value);
      w.Key("went_ge").Bool(b.went_ge);
      w.EndObject();
    }
    w.EndArray();
    w.Key("verdict").Bool(verdict);
    w.Key("cost").Double(total_cost);
    w.EndObject();
    out_ << w.str() << "\n";
    acquisitions_.clear();
    branches_.clear();
  }

 private:
  std::ofstream& out_;
  const Schema& schema_;
  uint64_t tuple_ = 0;
  std::vector<TraceAcquisition> acquisitions_;
  std::vector<TraceBranch> branches_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::vector<CsvColumnSpec> attrs;
  std::vector<WhereSpec> wheres;
  std::string planner_name = "heuristic";
  size_t max_splits = 5;
  double train_frac = 0.6;
  double spsf_log10 = -1.0;  // <0: all points
  double uncertainty_eps = 0.0;
  bool explain = false;
  std::string emit = "tree";
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Die("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--attr") {
      const auto parts = SplitColon(next());
      if (parts.size() != 3) Die("--attr expects NAME:BINS:COST");
      CsvColumnSpec spec;
      spec.name = parts[0];
      spec.bins = static_cast<uint32_t>(ParseLong(parts[1], "bins"));
      spec.cost = std::strtod(parts[2].c_str(), nullptr);
      attrs.push_back(spec);
    } else if (arg == "--where") {
      const auto parts = SplitColon(next());
      if (parts.size() != 3 && parts.size() != 4) {
        Die("--where expects NAME:LO:HI[:not]");
      }
      WhereSpec w;
      w.name = parts[0];
      w.lo = static_cast<Value>(ParseLong(parts[1], "lo"));
      w.hi = static_cast<Value>(ParseLong(parts[2], "hi"));
      w.negated = parts.size() == 4 && parts[3] == "not";
      wheres.push_back(w);
    } else if (arg == "--planner") {
      planner_name = next();
    } else if (arg == "--max-splits") {
      max_splits = static_cast<size_t>(ParseLong(next(), "max-splits"));
    } else if (arg == "--train-frac") {
      train_frac = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--spsf") {
      spsf_log10 = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--uncertainty") {
      uncertainty_eps = std::strtod(next().c_str(), nullptr);
    } else if (arg.rfind("--uncertainty=", 0) == 0) {
      uncertainty_eps = std::strtod(arg.c_str() + 14, nullptr);
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--emit") {
      emit = next();
    } else if (arg.rfind("--emit=", 0) == 0) {
      emit = arg.substr(7);
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return 0;
    } else {
      Die("unknown flag " + arg);
    }
  }
  if (csv_path.empty()) Die("--csv is required");
  if (attrs.empty()) Die("at least one --attr is required");
  if (wheres.empty()) Die("at least one --where is required");
  if (train_frac <= 0.0 || train_frac >= 1.0) {
    Die("--train-frac must be in (0,1)");
  }
  if (emit != "tree" && emit != "flat") Die("--emit expects tree or flat");
  if (uncertainty_eps < 0.0 || uncertainty_eps > 1.0) {
    Die("--uncertainty must be in [0,1]");
  }

  // --- Load and discretize ------------------------------------------------
  Result<CsvTable> table = LoadCsvFile(csv_path);
  if (!table.ok()) Die(table.status().ToString());
  Result<Dataset> loaded = DatasetFromCsv(*table, attrs);
  if (!loaded.ok()) Die(loaded.status().ToString());
  const auto [train, test] = loaded->SplitFraction(train_frac);
  const Schema& schema = loaded->schema();
  std::printf("loaded %zu rows (%zu train / %zu test), %zu attributes\n",
              loaded->num_rows(), train.num_rows(), test.num_rows(),
              schema.num_attributes());

  // --- Query --------------------------------------------------------------
  Conjunct preds;
  for (const WhereSpec& w : wheres) {
    const AttrId a = schema.FindAttribute(w.name);
    if (a == kInvalidAttr) Die("--where names unknown attribute " + w.name);
    if (w.lo > w.hi || w.hi >= schema.domain_size(a)) {
      Die("--where range out of domain for " + w.name);
    }
    preds.emplace_back(a, w.lo, w.hi, w.negated);
  }
  const Query query = Query::Conjunction(std::move(preds));
  if (!query.ValidFor(schema)) Die("invalid query (duplicate attribute?)");
  std::printf("query: %s\n\n", query.ToString(schema).c_str());

  // --- Plan ---------------------------------------------------------------
  if (train.num_rows() == 0) Die("empty training split");
  DatasetEstimator estimator(train);
  PerAttributeCostModel cost_model(schema);
  const SplitPointSet splits =
      spsf_log10 >= 0 ? SplitPointSet::FromLog10Spsf(schema, spsf_log10)
                      : SplitPointSet::AllPoints(schema);
  OptSeqSolver optseq;
  GreedySeqSolver greedyseq;
  const SequentialSolver& base =
      query.predicates().size() <= 12
          ? static_cast<const SequentialSolver&>(optseq)
          : static_cast<const SequentialSolver&>(greedyseq);

  NaivePlanner naive(estimator, cost_model);
  Plan plan;
  if (planner_name == "naive") {
    plan = naive.BuildPlan(query);
  } else if (planner_name == "corrseq") {
    SequentialPlanner planner(estimator, cost_model, base, "CorrSeq");
    plan = planner.BuildPlan(query);
  } else if (planner_name == "heuristic") {
    GreedyPlanner::Options opts;
    opts.split_points = &splits;
    opts.seq_solver = &base;
    opts.max_splits = max_splits;
    GreedyPlanner planner(estimator, cost_model, opts);
    plan = planner.BuildPlan(query);
  } else if (planner_name == "exhaustive") {
    ExhaustivePlanner::Options opts;
    opts.split_points = &splits;
    ExhaustivePlanner planner(estimator, cost_model, opts);
    plan = planner.BuildPlan(query);
  } else if (planner_name == "regret") {
    // Minmax regret over a symmetric +-eps box around the point estimates;
    // the heuristic plan is the point planner (candidate 0 + degenerate-box
    // fallback).
    GreedyPlanner::Options gopts;
    gopts.split_points = &splits;
    gopts.seq_solver = &base;
    gopts.max_splits = max_splits;
    GreedyPlanner point(estimator, cost_model, gopts);
    opt::RegretPlanner::Options ropts;
    ropts.point_planner = &point;
    ropts.box = opt::UncertaintyBox::Uniform(uncertainty_eps);
    opt::RegretPlanner planner(estimator, cost_model, std::move(ropts));
    plan = planner.BuildPlan(query);
    if (planner.stats().degenerate_fallback) {
      std::printf("regret: degenerate box (eps=%.3f), point plan kept\n",
                  uncertainty_eps);
    } else {
      std::printf(
          "regret: %zu candidates x %zu scenarios, worst-case regret "
          "%.3f (point plan's: %.3f)\n",
          planner.stats().candidates, planner.stats().scenarios,
          planner.stats().worst_case_regret,
          planner.stats().point_plan_regret);
    }
  } else {
    Die("unknown --planner " + planner_name);
  }

  if (emit == "flat") {
    const CompiledPlan compiled = CompiledPlan::Compile(plan);
    std::printf("%s\n", DumpCompiledPlan(compiled, schema).c_str());
  } else {
    std::printf("plan (%s):\n%s\n", PlanSummary(plan).c_str(),
                explain ? ExplainPlan(plan, estimator, cost_model).c_str()
                        : PrintPlan(plan, schema).c_str());
  }

  // --- Costs --------------------------------------------------------------
  const Plan naive_plan = naive.BuildPlan(query);
  const auto r_train = EmpiricalPlanCost(plan, train, query, cost_model);

  // The test pass optionally streams a JSONL trace: one line per tuple,
  // then one {"summary": ...} line with the acquisition histogram.
  std::ofstream trace_file;
  std::unique_ptr<JsonlTraceSink> jsonl;
  AttributeProfile profile(schema.num_attributes());
  std::unique_ptr<TeeTraceSink> tee;
  TraceSink* sink = nullptr;
  if (!trace_out.empty()) {
    trace_file.open(trace_out);
    if (!trace_file) Die("cannot open --trace-out " + trace_out);
    jsonl = std::make_unique<JsonlTraceSink>(trace_file, schema);
    tee = std::make_unique<TeeTraceSink>(jsonl.get(), &profile);
    sink = tee.get();
  }
  const auto r_test = EmpiricalPlanCost(plan, test, query, cost_model, sink);
  if (sink != nullptr) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("summary");
    obs::WriteAttributeProfile(w, profile, &schema);
    w.EndObject();
    trace_file << w.str() << "\n";
    trace_file.close();
    std::printf("[wrote %s: %zu tuple traces + summary]\n", trace_out.c_str(),
                r_test.tuples);
  }
  const auto n_test = EmpiricalPlanCost(naive_plan, test, query, cost_model);
  std::printf("mean cost: train=%.2f test=%.2f (naive test=%.2f, gain %.2fx)\n",
              r_train.mean_cost, r_test.mean_cost, n_test.mean_cost,
              r_test.mean_cost > 0 ? n_test.mean_cost / r_test.mean_cost
                                   : 1.0);
  std::printf("verdict errors on test: %zu of %zu tuples\n",
              r_test.verdict_errors, r_test.tuples);
  return 0;
}
