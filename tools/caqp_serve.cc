// caqp_serve: workload replay against the caqp::serve::QueryService.
//
// Generates a synthetic correlated dataset, a pool of distinct conjunctive
// queries, and replays a repeated-query request stream from concurrent
// client threads at a target concurrency. Each request's predicates are
// re-shuffled before submission, so cache hits demonstrate canonicalization
// (order-insensitive query signatures), not string matching. Prints
// throughput and latency percentiles from the service's latency stats and
// the caqp::obs registry.
//
// Example:
//   caqp_serve --workers 8 --clients 16 --requests 20000 --distinct 32
//
// --workers N          service worker threads (default 4)
// --clients N          concurrent client threads submitting requests
//                      (default 8)
// --requests N         total requests to replay (default 20000)
// --distinct N         distinct queries in the workload (default 16)
// --tuples N           synthetic dataset size (default 20000)
// --attrs N            synthetic attributes (default 10)
// --gamma G            correlation factor, group size G+1 (default 4)
// --planner P          greedy | greedyseq | optseq | naive (default greedy)
// --max-splits K       greedy split budget (default 5)
// --cache-capacity N   plan-cache entries (default 1024)
// --no-cache           plan-per-query baseline (capacity 0, no single-flight)
// --deadline-ms D      per-request deadline; requests still queued when it
//                      expires answer kDeadlineExceeded (default 0 = none)
// --planner-timeout-ms T   cap on how long a request waits for another
//                      thread's in-flight planning before serving a cheap
//                      sequential fallback plan (default 0 = wait forever)
// --max-queue-depth N  shed load: admissions beyond N queued requests answer
//                      kUnavailable immediately (default 0 = unbounded)
// --metrics-out PATH   write metrics as JSON: {"registry": <process-global
//                      obs registry>, "serve": <the service's per-worker
//                      metric shards, merged>}
// --trace-out PATH     enable request tracing and write Chrome/Perfetto
//                      trace-event JSON (open at https://ui.perfetto.dev):
//                      per-request spans (queue -> plan -> exec) plus
//                      flight-recorder dumps for every degraded request
//                      (deadline exceeded / shed / planner-timeout fallback)
// --calibration-out PATH   enable plan-quality calibration and write the
//                      cumulative predicted-vs-observed report (per-plan
//                      regret, per-attribute drift scores) as JSON
// --serve-report-out PATH  write the ServeReport (request counts + latency
//                      histogram with bucket bounds) as JSON
// --drift-threshold X  enable the drift monitor: when the per-window max
//                      attribute drift exceeds X for --drift-windows
//                      consecutive windows, bump the estimator version and
//                      invalidate the plan cache (default 0 = report only)
// --drift-windows K    consecutive over-threshold windows before firing
//                      (default 2)
// --drift-interval-ms T    drift monitor snapshot cadence (default 100)
// --robust-drift       widen-don't-invalidate: firing windows install an
//                      uncertainty box from the observed signed drift and
//                      workers replan with the minmax-regret planner over
//                      it; re-fires only on drift exceeding the box
// --shift-at F         adversarial drift injection: after fraction F of each
//                      client's requests, served tuples are complemented
//                      (v -> domain-1-v), shifting the distribution away
//                      from the training split (default off)
// --seed S             workload RNG seed (default 20050405)
//
// Distributed mode (--shards N, N >= 1) replays whole-dataset queries
// through a dist::Coordinator instead of per-tuple requests through the
// QueryService: the test split is partitioned across N executor shards and
// every query scatter-gathers over all of them.
//
// --shards N               executor shards (default 0 = per-tuple serve mode)
// --partition hash|range   row partitioning scheme (default hash)
// --shard-deadline-ms D    per-query gather budget; shards that overrun
//                          degrade their partition to Unknown rows
//                          (default 0 = wait forever)
// --shard-fault-profile P  shard fault mini-language, e.g.
//                          "kill@1=50,delay@2=20": shard 1 dies after 50
//                          requests, shard 2 sleeps 20ms per request
// --fault-profile P        row-level acquisition faults inside every shard
//                          (fault/fault.h mini-language, per-shard seeds)
//
// Run `caqp_serve --help` for the full grouped flag listing.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/query_signature.h"
#include "data/synthetic_gen.h"
#include "dist/coordinator.h"
#include "fault/fault.h"
#include "obs/calibration.h"
#include "obs/export.h"
#include "obs/exposer.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "opt/greedy_plan.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "opt/optseq.h"
#include "opt/regret.h"
#include "opt/split_points.h"
#include "opt/uncertainty.h"
#include "prob/dataset_estimator.h"
#include "serve/query_service.h"

using namespace caqp;

namespace {

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "caqp_serve: %s\n", msg.c_str());
  std::exit(1);
}

struct Config {
  size_t workers = 4;
  size_t clients = 8;
  size_t requests = 20000;
  size_t distinct = 16;
  size_t tuples = 20000;
  uint32_t attrs = 10;
  uint32_t gamma = 4;
  std::string planner = "greedy";
  size_t max_splits = 5;
  size_t cache_capacity = 1024;
  double deadline_ms = 0.0;
  double planner_timeout_ms = 0.0;
  size_t max_queue_depth = 0;
  std::string metrics_out;
  std::string trace_out;
  std::string calibration_out;
  std::string serve_report_out;
  /// Live telemetry plane: -1 = exposer off; >= 0 binds that port (0 picks
  /// an ephemeral port and prints it — how the CI scrape smoke runs).
  int metrics_port = -1;
  /// When the exposer is up, write the bound port here (scrapers poll for
  /// this file instead of parsing stdout).
  std::string metrics_port_file;
  /// Keep the process (and the exposer) alive this long after the replay
  /// finishes, so external scrapers get a stable target.
  double metrics_linger_ms = 0.0;
  /// Flight-recorder sizing (see serve::QueryService::Options /
  /// dist::Coordinator::Options for the memory-cost arithmetic).
  size_t span_buffer = size_t{1} << 15;
  size_t flight_capacity = 128;
  size_t max_incidents = 8192;
  /// SLO burn-rate monitoring (serve mode): enabled by --slo-latency-ms.
  double slo_latency_ms = 0.0;
  double slo_availability_target = 0.999;
  double slo_latency_target = 0.99;
  double drift_threshold = 0.0;
  int drift_windows = 2;
  double drift_interval_ms = 100.0;
  bool robust_drift = false;
  double shift_at = -1.0;
  uint64_t seed = 20050405;
  // Distributed mode.
  size_t shards = 0;  ///< 0 = per-tuple serve mode
  std::string partition = "hash";
  double shard_deadline_ms = 0.0;
  std::string shard_fault_profile;
  std::string fault_profile;

  bool calibration_on() const {
    return !calibration_out.empty() || drift_threshold > 0.0 || robust_drift;
  }
};

void PrintHelp() {
  std::printf(
      "caqp_serve: workload replay against caqp::serve (per-tuple requests)\n"
      "or caqp::dist (--shards N: whole-dataset scatter-gather queries).\n"
      "\n"
      "workload\n"
      "  --clients N           concurrent client threads (default 8)\n"
      "  --requests N          total requests to replay (default 20000)\n"
      "  --distinct N          distinct queries in the workload (default 16)\n"
      "  --tuples N            synthetic dataset size (default 20000)\n"
      "  --attrs N             synthetic attributes (default 10)\n"
      "  --gamma G             correlation factor, group size G+1 (default 4)\n"
      "  --seed S              workload RNG seed (default 20050405)\n"
      "\n"
      "planning\n"
      "  --planner P           greedy | greedyseq | optseq | naive\n"
      "                        (default greedy)\n"
      "  --max-splits K        greedy split budget (default 5)\n"
      "  --cache-capacity N    plan-cache entries (default 1024)\n"
      "  --no-cache            plan-per-query baseline (capacity 0)\n"
      "  --workers N           service worker threads, serve mode only\n"
      "                        (default 4)\n"
      "\n"
      "robustness (serve mode)\n"
      "  --deadline-ms D       per-request deadline; overruns answer\n"
      "                        kDeadlineExceeded (default 0 = none)\n"
      "  --planner-timeout-ms T  cap on waiting for another thread's\n"
      "                        in-flight planning before serving a cheap\n"
      "                        fallback plan (default 0 = wait forever)\n"
      "  --max-queue-depth N   shed admissions beyond N queued requests\n"
      "                        (default 0 = unbounded)\n"
      "\n"
      "drift / calibration\n"
      "  --calibration-out PATH  write predicted-vs-observed report as JSON\n"
      "  --drift-threshold X   invalidate plans when per-window attribute\n"
      "                        drift exceeds X (default 0 = report only)\n"
      "  --drift-windows K     consecutive windows before firing (default 2)\n"
      "  --drift-interval-ms T drift snapshot cadence (default 100)\n"
      "  --robust-drift        widen, don't just invalidate: firing windows\n"
      "                        convert signed drift into an uncertainty box\n"
      "                        and workers replan with the minmax-regret\n"
      "                        planner over it; once a box is installed the\n"
      "                        monitor only re-fires on drift in excess of\n"
      "                        the box (one invalidation per shift)\n"
      "  --shift-at F          complement served tuples after fraction F of\n"
      "                        each client's requests (default off)\n"
      "\n"
      "distributed (--shards)\n"
      "  --shards N            executor shards (default 0 = serve mode)\n"
      "  --partition S         hash | range row partitioning (default hash)\n"
      "  --shard-deadline-ms D per-query gather budget; slow shards degrade\n"
      "                        their partition to Unknown (default 0)\n"
      "  --shard-fault-profile P  e.g. \"kill@1=50,delay@2=20\"\n"
      "  --fault-profile P     row-level acquisition faults inside shards,\n"
      "                        e.g. \"transient=0.1,seed=7\"\n"
      "\n"
      "output / telemetry\n"
      "  --metrics-out PATH    obs metrics registries as JSON\n"
      "  --metrics-port P      serve Prometheus text exposition on\n"
      "                        127.0.0.1:P while the replay runs (0 picks an\n"
      "                        ephemeral port and prints it); GET /metrics\n"
      "                        merges the process registry, the tier's\n"
      "                        per-worker shards, shard health, calibration\n"
      "                        drift/regret and SLO burn gauges\n"
      "  --metrics-port-file PATH  write the bound metrics port here\n"
      "                        (scrapers poll the file, not stdout)\n"
      "  --metrics-linger-ms L keep the exposer up this long after the\n"
      "                        replay finishes (default 0)\n"
      "  --trace-out PATH      Chrome/Perfetto trace-event JSON (enables\n"
      "                        tracing + flight recorder); in dist mode the\n"
      "                        trace is the unified coordinator+shard join\n"
      "                        with a caqpTraceJoin summary\n"
      "  --serve-report-out PATH  ServeReport (serve mode) or DistReport\n"
      "                        (dist mode) as JSON\n"
      "  --span-buffer N       span-ring entries per worker (default 32768;\n"
      "                        ~72 bytes each)\n"
      "  --flight-capacity N   flight-recorder ring entries per worker\n"
      "                        (default 128)\n"
      "  --max-incidents N     retained flight-recorder incidents\n"
      "                        (default 8192)\n"
      "\n"
      "slo (serve mode)\n"
      "  --slo-latency-ms T    enable burn-rate SLO monitoring with this\n"
      "                        latency threshold (default off); burns bump\n"
      "                        serve.slo_burns and halve the shed limit\n"
      "  --slo-availability-target X  availability SLO target (default\n"
      "                        0.999)\n"
      "  --slo-latency-target X  fraction of requests under the threshold\n"
      "                        (default 0.99)\n");
}

/// Synthesized calibration gauges for one scrape: cumulative drift and
/// regret as gauges next to the merged registry lines.
void AppendCalibrationGauges(obs::RegistrySnapshot* snap, const char* tier,
                             const obs::CalibrationReport& cal) {
  const std::string prefix = std::string(tier) + ".calibration.";
  snap->counters.push_back({prefix + "executions", cal.executions});
  snap->gauges.push_back({prefix + "regret_per_exec", cal.regret()});
  snap->gauges.push_back({prefix + "max_drift", cal.MaxDrift(1)});
}

/// One /metrics scrape in serve mode: process-global registry merged with
/// the service's per-worker shards, plus SLO burn and calibration gauges.
std::string RenderServeMetrics(const serve::QueryService& service,
                               bool calibration_on) {
  obs::RegistrySnapshot snap = obs::DefaultRegistry().Snapshot();
  obs::MergeSnapshotInto(&snap, service.metrics().Snapshot());
  if (const obs::SloMonitor* slo = service.slo_monitor()) {
    const obs::SloMonitor::Snapshot s =
        slo->GetSnapshot(obs::MonotonicNowNs());
    snap.gauges.push_back(
        {"serve.slo.availability_ratio", s.availability_ratio});
    snap.gauges.push_back(
        {"serve.slo.availability_fast_burn", s.availability_fast_burn});
    snap.gauges.push_back(
        {"serve.slo.availability_slow_burn", s.availability_slow_burn});
    snap.gauges.push_back({"serve.slo.latency_ratio", s.latency_ratio});
    snap.gauges.push_back(
        {"serve.slo.latency_fast_burn", s.latency_fast_burn});
    snap.gauges.push_back(
        {"serve.slo.latency_slow_burn", s.latency_slow_burn});
    snap.counters.push_back({"serve.slo.burns", s.burns_fired});
  }
  if (calibration_on) {
    AppendCalibrationGauges(&snap, "serve", service.CalibrationSnapshot());
  }
  return obs::RenderPrometheusText(snap);
}

/// One /metrics scrape in dist mode: coordinator + shard registries merged
/// with the process registry, plus per-shard health-state gauges.
std::string RenderDistMetrics(const dist::Coordinator& coord,
                              bool calibration_on) {
  obs::RegistrySnapshot snap = obs::DefaultRegistry().Snapshot();
  obs::MergeSnapshotInto(&snap, coord.metrics().Snapshot());
  const dist::DistReport report = coord.Report();
  for (const dist::ShardReportRow& row : report.shards) {
    const std::string prefix = "dist.shard." + std::to_string(row.shard);
    // 0 = healthy, 1 = degraded, 2 = dead (dist/health.h).
    snap.gauges.push_back({prefix + ".health_state",
                           static_cast<double>(static_cast<int>(row.state))});
    snap.gauges.push_back(
        {prefix + ".up",
         row.state == dist::ShardHealth::State::kDead ? 0.0 : 1.0});
  }
  if (calibration_on) {
    AppendCalibrationGauges(&snap, "dist", coord.CalibrationSnapshot());
  }
  return obs::RenderPrometheusText(snap);
}

/// Starts the exposer when --metrics-port was given; announces the bound
/// port on stdout and in --metrics-port-file. Returns nullptr when off.
std::unique_ptr<obs::MetricsExposer> MaybeStartExposer(
    const Config& cfg, obs::MetricsExposer::Renderer render) {
  if (cfg.metrics_port < 0) return nullptr;
  obs::MetricsExposer::Options eopts;
  eopts.port = static_cast<uint16_t>(cfg.metrics_port);
  auto exposer =
      std::make_unique<obs::MetricsExposer>(std::move(render), eopts);
  const Status st = exposer->Start();
  if (!st.ok()) Die("--metrics-port: " + st.ToString());
  std::printf("metrics: http://127.0.0.1:%u/metrics\n",
              static_cast<unsigned>(exposer->port()));
  std::fflush(stdout);
  if (!cfg.metrics_port_file.empty()) {
    obs::WriteFileOrComplain(cfg.metrics_port_file,
                             std::to_string(exposer->port()) + "\n");
  }
  return exposer;
}

/// --metrics-linger-ms: hold the exposer up after the replay so external
/// scrapers have a stable target.
void LingerExposer(const Config& cfg, const obs::MetricsExposer* exposer) {
  if (exposer == nullptr || cfg.metrics_linger_ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(cfg.metrics_linger_ms));
}

/// Distinct random conjunctive queries over the (binary) synthetic schema:
/// each query predicates 2..n attributes on a random value, negating some.
std::vector<Query> MakeWorkload(const Schema& schema, const Config& cfg) {
  std::mt19937_64 rng(cfg.seed);
  std::vector<Query> out;
  std::vector<uint64_t> sigs;
  const size_t n = schema.num_attributes();
  while (out.size() < cfg.distinct) {
    std::vector<AttrId> attrs(n);
    for (size_t i = 0; i < n; ++i) attrs[i] = static_cast<AttrId>(i);
    std::shuffle(attrs.begin(), attrs.end(), rng);
    const size_t arity = 2 + rng() % (n - 1);
    Conjunct preds;
    for (size_t i = 0; i < arity; ++i) {
      const Value v = static_cast<Value>(
          rng() % schema.domain_size(attrs[i]));
      preds.emplace_back(attrs[i], v, v, /*negated=*/rng() % 4 == 0);
    }
    Query q = Query::Conjunction(std::move(preds));
    // Reject signature duplicates so --distinct is honest.
    const uint64_t sig = QuerySignature(q);
    if (std::find(sigs.begin(), sigs.end(), sig) != sigs.end()) continue;
    sigs.push_back(sig);
    out.push_back(std::move(q));
  }
  return out;
}

/// Per-worker planning bundle: own DatasetEstimator (not shareable — see
/// prob/dataset_estimator.h) over the shared training split, plus the
/// chosen planner. With --robust-drift, the chosen planner becomes the
/// point planner inside an opt::RegretPlanner that reads the shared
/// uncertainty box the drift monitor widens.
class WorkloadPlanBuilder : public serve::PlanBuilder {
 public:
  WorkloadPlanBuilder(const Dataset& train,
                      const AcquisitionCostModel& cost_model,
                      const SplitPointSet& splits, const Config& cfg,
                      std::shared_ptr<opt::SharedUncertaintyBox> robust_box =
                          nullptr)
      : estimator_(train), cost_model_(&cost_model),
        robust_box_(std::move(robust_box)) {
    if (cfg.planner == "greedy") {
      GreedyPlanner::Options gopts;
      gopts.split_points = &splits;
      gopts.seq_solver = &greedyseq_;
      gopts.max_splits = cfg.max_splits;
      planner_ = std::make_unique<GreedyPlanner>(estimator_, cost_model,
                                                 gopts);
    } else if (cfg.planner == "greedyseq") {
      planner_ = std::make_unique<SequentialPlanner>(estimator_, cost_model,
                                                     greedyseq_, "GreedySeq");
    } else if (cfg.planner == "optseq") {
      planner_ = std::make_unique<SequentialPlanner>(estimator_, cost_model,
                                                     optseq_, "OptSeq");
    } else if (cfg.planner == "naive") {
      planner_ = std::make_unique<NaivePlanner>(estimator_, cost_model);
    } else {
      Die("unknown --planner " + cfg.planner);
    }
    fingerprint_ = std::hash<std::string>{}(cfg.planner) ^
                   (cfg.max_splits * 0x9e3779b97f4a7c15ULL);
    if (robust_box_ != nullptr) {
      // The point planner stays alive as the regret planner's candidate-0
      // source and degenerate-box fallback: until the first widening the
      // box is degenerate and plans are bit-identical to the point plans.
      point_planner_ = std::move(planner_);
      opt::RegretPlanner::Options ropts;
      ropts.point_planner = point_planner_.get();
      ropts.box_provider = [box = robust_box_] { return box->Get(); };
      planner_ = std::make_unique<opt::RegretPlanner>(
          estimator_, cost_model, std::move(ropts));
      fingerprint_ ^= 0x5e67e7a11dbadb0full;  // regret wrapper != point plan
    }
  }

  Plan Build(const Query& query) override {
    return planner_->BuildPlan(query);
  }

  /// Served when the configured planner overruns --planner-timeout-ms: a
  /// split-free sequential plan is orders of magnitude cheaper to build and
  /// still correct, just less energy-optimal.
  Plan BuildFallback(const Query& query) override {
    SequentialPlanner fallback(estimator_, *cost_model_, greedyseq_,
                               "GreedySeqFallback");
    return fallback.BuildPlan(query);
  }

  uint64_t ConfigFingerprint() const override { return fingerprint_; }

  /// Plans are stamped with the training estimator's beliefs so the
  /// calibration report can score them against live traffic.
  CondProbEstimator* CalibrationEstimator() override { return &estimator_; }

  /// Robust mode: report the current shared box so CompileForServe stamps
  /// the interval cost promise onto the plan's estimates.
  bool PlanningBox(opt::UncertaintyBox* out) override {
    if (robust_box_ == nullptr) return false;
    *out = robust_box_->Get();
    return true;
  }

 private:
  DatasetEstimator estimator_;
  const AcquisitionCostModel* cost_model_;
  std::shared_ptr<opt::SharedUncertaintyBox> robust_box_;
  GreedySeqSolver greedyseq_;
  OptSeqSolver optseq_;
  std::unique_ptr<Planner> point_planner_;  // kept alive under planner_
  std::unique_ptr<Planner> planner_;
  uint64_t fingerprint_ = 0;
};

/// Distributed replay: a Coordinator over the test split, whole-dataset
/// queries scatter-gathered across --shards executor shards. Returns the
/// process exit code.
int RunDist(const Config& cfg, const Dataset& train, const Dataset& test,
            const AcquisitionCostModel& cost_model,
            const SplitPointSet& splits,
            const std::vector<Query>& workload) {
  dist::Coordinator::Options dopts;
  const Result<dist::PartitionSpec::Scheme> scheme =
      dist::PartitionSpec::ParseScheme(cfg.partition);
  if (!scheme.ok()) Die("--partition: " + scheme.status().ToString());
  dopts.partition.scheme = scheme.value();
  dopts.partition.num_shards = cfg.shards;
  dopts.plan_cache_capacity = cfg.cache_capacity;
  dopts.shard_deadline_seconds = cfg.shard_deadline_ms / 1000.0;
  dopts.enable_tracing = !cfg.trace_out.empty();
  dopts.enable_calibration = cfg.calibration_on();
  dopts.max_span_events_per_worker = cfg.span_buffer;
  dopts.flight_capacity = cfg.flight_capacity;
  dopts.max_incidents = cfg.max_incidents;
  if (!cfg.shard_fault_profile.empty()) {
    const Result<dist::ShardFaultSpec> faults =
        dist::ShardFaultSpec::Parse(cfg.shard_fault_profile);
    if (!faults.ok()) {
      Die("--shard-fault-profile: " + faults.status().ToString());
    }
    dopts.shard_faults = faults.value();
  }
  if (!cfg.fault_profile.empty()) {
    const Result<FaultSpec> faults = FaultSpec::Parse(cfg.fault_profile);
    if (!faults.ok()) Die("--fault-profile: " + faults.status().ToString());
    dopts.acquisition_faults = faults.value();
  }

  dist::Coordinator coord(
      test, cost_model,
      [&] {
        return std::make_unique<WorkloadPlanBuilder>(train, cost_model,
                                                     splits, cfg);
      },
      dopts);
  std::printf(
      "dist: %zu shards (%s partition), %zu rows, deadline %.1fms\n\n",
      coord.num_shards(), cfg.partition.c_str(), coord.num_rows(),
      cfg.shard_deadline_ms);
  const std::unique_ptr<obs::MetricsExposer> exposer = MaybeStartExposer(
      cfg, [&coord, calibration_on = cfg.calibration_on()] {
        return RenderDistMetrics(coord, calibration_on);
      });

  std::vector<std::thread> clients;
  std::vector<size_t> verdict_errors(cfg.clients, 0);
  std::vector<size_t> unknown_rows(cfg.clients, 0);
  std::vector<size_t> degraded(cfg.clients, 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < cfg.clients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(cfg.seed ^ (0xd1u + c));
      const size_t quota =
          cfg.requests / cfg.clients + (c < cfg.requests % cfg.clients);
      for (size_t r = 0; r < quota; ++r) {
        Conjunct preds = workload[rng() % workload.size()].predicates();
        std::shuffle(preds.begin(), preds.end(), rng);
        const Query q = Query::Conjunction(std::move(preds));
        const dist::Coordinator::Response resp = coord.Execute(q);
        if (!resp.ok()) {
          ++verdict_errors[c];
          continue;
        }
        degraded[c] += resp.degraded();
        unknown_rows[c] += resp.unknown_rows;
        // Spot-check: every defined verdict must agree with ground truth.
        for (int probe = 0; probe < 32; ++probe) {
          const RowId row =
              static_cast<RowId>(rng() % test.num_rows());
          if (resp.row_verdicts[row] == Truth::kUnknown) continue;
          if ((resp.row_verdicts[row] == Truth::kTrue) !=
              q.Matches(test.GetTuple(row))) {
            ++verdict_errors[c];
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  size_t total_errors = 0, total_unknown = 0, total_degraded = 0;
  for (size_t c = 0; c < cfg.clients; ++c) {
    total_errors += verdict_errors[c];
    total_unknown += unknown_rows[c];
    total_degraded += degraded[c];
  }
  const dist::DistReport report = coord.Report();
  const double qps = static_cast<double>(cfg.requests) / elapsed;
  CAQP_OBS_GAUGE_SET("dist.replay.throughput_qps", qps);
  CAQP_OBS_GAUGE_SET("dist.replay.elapsed_seconds", elapsed);

  std::printf("replayed %zu queries in %.3fs  (%.0f q/s)\n", cfg.requests,
              elapsed, qps);
  std::printf(
      "degraded queries: %zu   unknown rows served: %zu   verdict errors: "
      "%zu\n",
      total_degraded, total_unknown, total_errors);
  std::printf(
      "coordinator: %llu planned, %llu cache hits, %llu stragglers, "
      "%llu probes\n",
      static_cast<unsigned long long>(report.planned),
      static_cast<unsigned long long>(report.cache_hits),
      static_cast<unsigned long long>(report.stragglers),
      static_cast<unsigned long long>(report.probes));
  std::printf(
      "query latency: mean %.1fus  p50 %.1fus  p99 %.1fus  max %.1fus\n",
      report.query_latency.mean() * 1e6, report.query_latency.p50() * 1e6,
      report.query_latency.p99() * 1e6, report.query_latency.max * 1e6);
  for (const dist::ShardReportRow& row : report.shards) {
    std::printf(
        "  shard %zu: %-8s %6zu rows  %6llu reqs  %4llu failures  "
        "%4llu timeouts  p99 %.1fus\n",
        row.shard, dist::ShardHealthStateName(row.state), row.rows,
        static_cast<unsigned long long>(row.requests),
        static_cast<unsigned long long>(row.failures),
        static_cast<unsigned long long>(row.timeouts),
        row.exec_latency.p99() * 1e6);
  }

  if (cfg.calibration_on()) {
    const obs::CalibrationReport cal = coord.CalibrationSnapshot();
    std::printf(
        "calibration: %llu executions, realized %.1f vs predicted %.1f "
        "(regret %+.3f/exec)\n",
        static_cast<unsigned long long>(cal.executions), cal.realized_cost,
        cal.predicted_cost, cal.regret());
    if (!cfg.calibration_out.empty()) {
      const std::string cal_json =
          obs::CalibrationReportToJson(cal, &test.schema());
      if (obs::WriteFileOrComplain(cfg.calibration_out, cal_json)) {
        std::printf("[wrote %s]\n", cfg.calibration_out.c_str());
      }
    }
  }
  if (!cfg.serve_report_out.empty()) {
    if (obs::WriteFileOrComplain(cfg.serve_report_out,
                                 dist::DistReportToJson(report))) {
      std::printf("[wrote %s]\n", cfg.serve_report_out.c_str());
    }
  }
  if (!cfg.trace_out.empty()) {
    // Unified trace: coordinator and shard spans joined per trace_id (every
    // shard span parented under the coordinator's request span) plus a
    // caqpTraceJoin summary block asserting the join's integrity.
    const std::string trace_json =
        obs::UnifiedTraceToJson(coord.trace_recorder());
    if (obs::WriteFileOrComplain(cfg.trace_out, trace_json)) {
      std::printf("[wrote %s — open at https://ui.perfetto.dev]\n",
                  cfg.trace_out.c_str());
    }
  }
  if (!cfg.metrics_out.empty()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("registry");
    obs::WriteRegistrySnapshot(w, obs::DefaultRegistry().Snapshot());
    w.Key("dist");
    obs::WriteRegistrySnapshot(w, coord.metrics().Snapshot());
    w.EndObject();
    if (obs::WriteFileOrComplain(cfg.metrics_out, w.TakeString())) {
      std::printf("[wrote %s]\n", cfg.metrics_out.c_str());
    }
  }
  LingerExposer(cfg, exposer.get());
  if (total_errors != 0) {
    std::fprintf(stderr, "caqp_serve: verdict mismatches detected\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Die("missing value after " + arg);
      return argv[++i];
    };
    auto next_num = [&]() {
      return std::strtoull(next().c_str(), nullptr, 10);
    };
    if (arg == "--workers") {
      cfg.workers = next_num();
    } else if (arg == "--clients") {
      cfg.clients = next_num();
    } else if (arg == "--requests") {
      cfg.requests = next_num();
    } else if (arg == "--distinct") {
      cfg.distinct = next_num();
    } else if (arg == "--tuples") {
      cfg.tuples = next_num();
    } else if (arg == "--attrs") {
      cfg.attrs = static_cast<uint32_t>(next_num());
    } else if (arg == "--gamma") {
      cfg.gamma = static_cast<uint32_t>(next_num());
    } else if (arg == "--planner") {
      cfg.planner = next();
    } else if (arg == "--max-splits") {
      cfg.max_splits = next_num();
    } else if (arg == "--cache-capacity") {
      cfg.cache_capacity = next_num();
    } else if (arg == "--no-cache") {
      cfg.cache_capacity = 0;
    } else if (arg == "--deadline-ms") {
      cfg.deadline_ms = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--planner-timeout-ms") {
      cfg.planner_timeout_ms = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--max-queue-depth") {
      cfg.max_queue_depth = next_num();
    } else if (arg == "--metrics-out") {
      cfg.metrics_out = next();
    } else if (arg == "--metrics-port") {
      cfg.metrics_port = static_cast<int>(next_num());
    } else if (arg == "--metrics-port-file") {
      cfg.metrics_port_file = next();
    } else if (arg == "--metrics-linger-ms") {
      cfg.metrics_linger_ms = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--span-buffer") {
      cfg.span_buffer = next_num();
    } else if (arg == "--flight-capacity") {
      cfg.flight_capacity = next_num();
    } else if (arg == "--max-incidents") {
      cfg.max_incidents = next_num();
    } else if (arg == "--slo-latency-ms") {
      cfg.slo_latency_ms = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--slo-availability-target") {
      cfg.slo_availability_target = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--slo-latency-target") {
      cfg.slo_latency_target = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--trace-out") {
      cfg.trace_out = next();
    } else if (arg == "--calibration-out") {
      cfg.calibration_out = next();
    } else if (arg == "--serve-report-out") {
      cfg.serve_report_out = next();
    } else if (arg == "--drift-threshold") {
      cfg.drift_threshold = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--drift-windows") {
      cfg.drift_windows = static_cast<int>(next_num());
    } else if (arg == "--drift-interval-ms") {
      cfg.drift_interval_ms = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--robust-drift") {
      cfg.robust_drift = true;
    } else if (arg == "--shift-at") {
      cfg.shift_at = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--seed") {
      cfg.seed = next_num();
    } else if (arg == "--shards") {
      cfg.shards = next_num();
    } else if (arg == "--partition") {
      cfg.partition = next();
    } else if (arg == "--shard-deadline-ms") {
      cfg.shard_deadline_ms = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--shard-fault-profile") {
      cfg.shard_fault_profile = next();
    } else if (arg == "--fault-profile") {
      cfg.fault_profile = next();
    } else if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return 0;
    } else {
      Die("unknown flag " + arg);
    }
  }
  if (cfg.distinct == 0 || cfg.requests == 0 || cfg.clients == 0) {
    Die("--distinct, --requests and --clients must be positive");
  }

  SyntheticDataOptions dopts;
  dopts.n = cfg.attrs;
  dopts.gamma = cfg.gamma;
  dopts.sel = 0.6;
  dopts.tuples = cfg.tuples;
  dopts.seed = cfg.seed;
  const Dataset data = GenerateSyntheticData(dopts);
  const Schema& schema = data.schema();
  const auto [train, test] = data.SplitFraction(0.6);
  PerAttributeCostModel cost_model(schema);
  const SplitPointSet splits = SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes()));

  const std::vector<Query> workload = MakeWorkload(schema, cfg);
  if (cfg.shards > 0) {
    std::printf(
        "dataset: %u binary attrs, gamma=%u, %zu train / %zu test rows\n"
        "workload: %zu distinct queries, %zu requests, %zu clients, "
        "planner=%s, cache=%zu\n",
        cfg.attrs, cfg.gamma, train.num_rows(), test.num_rows(),
        cfg.distinct, cfg.requests, cfg.clients, cfg.planner.c_str(),
        cfg.cache_capacity);
    return RunDist(cfg, train, test, cost_model, splits, workload);
  }
  std::printf(
      "dataset: %u binary attrs, gamma=%u, %zu train / %zu test rows\n"
      "workload: %zu distinct queries, %zu requests, %zu clients, "
      "%zu workers, planner=%s, cache=%zu\n\n",
      cfg.attrs, cfg.gamma, train.num_rows(), test.num_rows(), cfg.distinct,
      cfg.requests, cfg.clients, cfg.workers, cfg.planner.c_str(),
      cfg.cache_capacity);

  serve::QueryService::Options sopts;
  sopts.num_workers = cfg.workers;
  sopts.cache_capacity = cfg.cache_capacity;
  sopts.default_deadline_seconds = cfg.deadline_ms / 1000.0;
  sopts.planner_timeout_seconds = cfg.planner_timeout_ms / 1000.0;
  sopts.max_queue_depth = cfg.max_queue_depth;
  sopts.enable_tracing = !cfg.trace_out.empty();
  sopts.enable_calibration = cfg.calibration_on();
  sopts.max_span_events_per_worker = cfg.span_buffer;
  sopts.flight_capacity = cfg.flight_capacity;
  sopts.max_incidents = cfg.max_incidents;
  if (cfg.slo_latency_ms > 0.0) {
    sopts.enable_slo = true;
    sopts.slo.latency_threshold_seconds = cfg.slo_latency_ms / 1000.0;
    sopts.slo.availability_target = cfg.slo_availability_target;
    sopts.slo.latency_target = cfg.slo_latency_target;
  }
  sopts.drift.threshold = cfg.drift_threshold;
  sopts.drift.consecutive_windows = cfg.drift_windows;
  sopts.drift.min_window_evals = 32;
  // --robust-drift: firing windows widen a shared uncertainty box (pushed
  // to the per-worker regret planners via on_widen) instead of merely
  // invalidating; see serve::DriftPolicy.
  std::shared_ptr<opt::SharedUncertaintyBox> robust_box;
  if (cfg.robust_drift) {
    robust_box = std::make_shared<opt::SharedUncertaintyBox>();
    sopts.drift.widen_on_drift = true;
    sopts.drift.on_widen = [robust_box](const opt::UncertaintyBox& box,
                                        const obs::CalibrationReport&) {
      robust_box->Set(box);
    };
  }
  serve::QueryService service(
      schema, cost_model,
      [&] {
        return std::make_unique<WorkloadPlanBuilder>(train, cost_model,
                                                     splits, cfg, robust_box);
      },
      sopts);

  const std::unique_ptr<obs::MetricsExposer> exposer = MaybeStartExposer(
      cfg, [&service, calibration_on = cfg.calibration_on()] {
        return RenderServeMetrics(service, calibration_on);
      });

  // Drift monitor: periodic calibration windows concurrent with traffic.
  // With --drift-threshold, crossing the bar for --drift-windows consecutive
  // windows bumps the estimator version and invalidates the plan cache.
  std::atomic<bool> replay_done{false};
  std::atomic<size_t> drift_fired{0};
  std::atomic<double> peak_drift{0.0};
  std::thread drift_monitor;
  if (cfg.calibration_on()) {
    drift_monitor = std::thread([&] {
      const auto interval = std::chrono::duration<double, std::milli>(
          cfg.drift_interval_ms);
      while (!replay_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(interval);
        const serve::DriftStatus st = service.CheckDrift();
        double prev = peak_drift.load(std::memory_order_relaxed);
        while (st.max_drift > prev &&
               !peak_drift.compare_exchange_weak(prev, st.max_drift)) {
        }
        if (st.fired) drift_fired.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> clients;
  std::vector<size_t> matches(cfg.clients, 0);
  std::vector<size_t> verdict_errors(cfg.clients, 0);
  std::vector<size_t> rejected(cfg.clients, 0);
  std::vector<size_t> fallbacks(cfg.clients, 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t c = 0; c < cfg.clients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(cfg.seed ^ (0xc1u + c));
      const size_t quota =
          cfg.requests / cfg.clients + (c < cfg.requests % cfg.clients);
      const size_t shift_after =
          cfg.shift_at >= 0.0
              ? static_cast<size_t>(static_cast<double>(quota) * cfg.shift_at)
              : quota;
      for (size_t r = 0; r < quota; ++r) {
        // Re-shuffle the predicate order: the signature (and so the cache)
        // must be insensitive to it.
        Conjunct preds = workload[rng() % workload.size()].predicates();
        std::shuffle(preds.begin(), preds.end(), rng);
        Query q = Query::Conjunction(std::move(preds));
        Tuple tuple = test.GetTuple(
            static_cast<RowId>(rng() % test.num_rows()));
        if (r >= shift_after) {
          // Injected distribution shift: complement every attribute. The
          // training estimator's beliefs are now maximally wrong while the
          // tuples stay schema-valid, so drift scores must climb.
          for (size_t a = 0; a < tuple.size(); ++a) {
            tuple[a] = static_cast<Value>(
                schema.domain_size(static_cast<AttrId>(a)) - 1 - tuple[a]);
          }
        }
        const bool expected = q.Matches(tuple);
        const serve::QueryService::Response resp =
            service.SubmitAndWait(std::move(q), std::move(tuple));
        if (!resp.ok()) {  // deadline exceeded or shed under --max-queue-depth
          ++rejected[c];
          continue;
        }
        fallbacks[c] += resp.fallback;
        matches[c] += resp.exec.verdict;
        verdict_errors[c] += resp.exec.verdict != expected;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  replay_done.store(true, std::memory_order_release);
  if (drift_monitor.joinable()) drift_monitor.join();

  size_t total_matches = 0, total_errors = 0;
  size_t total_rejected = 0, total_fallbacks = 0;
  for (size_t c = 0; c < cfg.clients; ++c) {
    total_matches += matches[c];
    total_errors += verdict_errors[c];
    total_rejected += rejected[c];
    total_fallbacks += fallbacks[c];
  }
  const serve::ShardedPlanCache::Stats cs = service.cache().stats();
  const serve::ServeReport report = service.Report();
  const double rps = static_cast<double>(cfg.requests) / elapsed;
  CAQP_OBS_GAUGE_SET("serve.replay.throughput_rps", rps);
  CAQP_OBS_GAUGE_SET("serve.replay.elapsed_seconds", elapsed);

  std::printf("replayed %zu requests in %.3fs  (%.0f req/s)\n", cfg.requests,
              elapsed, rps);
  std::printf("matches: %zu   verdict errors: %zu\n", total_matches,
              total_errors);
  if (cfg.deadline_ms > 0 || cfg.max_queue_depth > 0 ||
      cfg.planner_timeout_ms > 0) {
    std::printf("rejected (deadline/shed): %zu   fallback plans: %zu\n",
                total_rejected, total_fallbacks);
  }
  std::printf(
      "cache: %llu hits / %llu misses (%.1f%% hit rate), %llu inserts, "
      "%llu evictions\n",
      static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses),
      100.0 * static_cast<double>(cs.hits) /
          static_cast<double>(std::max<uint64_t>(1, cs.hits + cs.misses)),
      static_cast<unsigned long long>(cs.inserts),
      static_cast<unsigned long long>(cs.evictions));
  // Percentiles come from the merged per-worker obs::Histogram shards —
  // every completed request, not a reservoir sample.
  std::printf(
      "latency: mean %.1fus  p50 %.1fus  p90 %.1fus  p99 %.1fus  "
      "p99.9 %.1fus  max %.1fus\n",
      report.latency.mean() * 1e6, report.latency.p50() * 1e6,
      report.latency.p90() * 1e6, report.latency.p99() * 1e6,
      report.latency.p999() * 1e6, report.latency.max * 1e6);
  if (report.deadline_exceeded + report.shed + report.fallbacks > 0) {
    std::printf(
        "degraded: %llu deadline-exceeded, %llu shed, %llu fallbacks "
        "(%zu flight-recorder dumps)\n",
        static_cast<unsigned long long>(report.deadline_exceeded),
        static_cast<unsigned long long>(report.shed),
        static_cast<unsigned long long>(report.fallbacks),
        service.trace_recorder().incident_count());
  }
  if (cfg.calibration_on()) {
    const obs::CalibrationReport cal = service.CalibrationSnapshot();
    std::printf(
        "calibration: %llu executions, realized %.1f vs predicted %.1f "
        "(regret %+.3f/exec), peak window drift %.3f\n",
        static_cast<unsigned long long>(cal.executions), cal.realized_cost,
        cal.predicted_cost, cal.regret(),
        peak_drift.load(std::memory_order_relaxed));
    if (cfg.drift_threshold > 0.0) {
      std::printf(
          "drift policy: threshold %.2f x%d windows -> %zu invalidations, "
          "estimator version now %llu\n",
          cfg.drift_threshold, cfg.drift_windows, drift_fired.load(),
          static_cast<unsigned long long>(service.estimator_version()));
    }
    if (cfg.robust_drift) {
      std::printf("robust drift: installed box %s\n",
                  service.CurrentUncertaintyBox().ToString().c_str());
    }
    if (!cfg.calibration_out.empty()) {
      const std::string cal_json = obs::CalibrationReportToJson(cal, &schema);
      if (obs::WriteFileOrComplain(cfg.calibration_out, cal_json)) {
        std::printf("[wrote %s]\n", cfg.calibration_out.c_str());
      }
    }
  }
  if (!cfg.serve_report_out.empty()) {
    if (obs::WriteFileOrComplain(cfg.serve_report_out,
                                 serve::ServeReportToJson(report))) {
      std::printf("[wrote %s]\n", cfg.serve_report_out.c_str());
    }
  }
  if (total_errors != 0) {
    std::fprintf(stderr, "caqp_serve: verdict mismatches detected\n");
    return 1;
  }

  if (!cfg.trace_out.empty()) {
    const std::string trace_json =
        obs::TraceEventsToJson(service.trace_recorder());
    if (obs::WriteFileOrComplain(cfg.trace_out, trace_json)) {
      std::printf("[wrote %s — open at https://ui.perfetto.dev]\n",
                  cfg.trace_out.c_str());
    }
  }
  if (!cfg.metrics_out.empty()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("registry");
    obs::WriteRegistrySnapshot(w, obs::DefaultRegistry().Snapshot());
    w.Key("serve");
    obs::WriteRegistrySnapshot(w, service.metrics().Snapshot());
    w.EndObject();
    if (obs::WriteFileOrComplain(cfg.metrics_out, w.TakeString())) {
      std::printf("[wrote %s]\n", cfg.metrics_out.c_str());
    }
    std::printf("\n%s", obs::RegistryToMarkdown(obs::DefaultRegistry()).c_str());
  }
  if (cfg.slo_latency_ms > 0.0) {
    std::printf("slo: %llu burn fires\n",
                static_cast<unsigned long long>(service.slo_burns_fired()));
  }
  LingerExposer(cfg, exposer.get());
  return 0;
}
