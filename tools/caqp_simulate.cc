// caqp_simulate: end-to-end sensor-network simulation from the command
// line. Generates one of the built-in network traces (lab | garden |
// synthetic), trains a conditional plan at the basestation, disseminates it
// over a (configurable, lossy) radio, runs a continuous query, and prints
// per-planner energy totals -- the whole Figure 4 loop in one command.
//
// Example:
//   caqp_simulate --network garden --motes 5 --epochs 2000
//     --max-splits 5 --drop-prob 0.05
//
// --network lab|garden|synthetic   trace generator (default garden)
// --motes N                        motes in the network (default 5)
// --epochs N                       continuous-query epochs (default 2000)
// --max-splits K                   heuristic split budget (default 5)
// --drop-prob P                    radio message loss (default 0)
// --limit N                        stop after N matches (LIMIT query mode)
// --fault-profile SPEC             inject sensor faults on the mote, e.g.
//                                  "transient=0.1,stuck=0.01,spike=0.05,
//                                  spike_mult=3,seed=7" (see FaultSpec::Parse)
// --policy unknown|retry|abort     degradation policy under faults
//                                  (default retry)
// --max-retries N                  attempts per acquisition for --policy
//                                  retry, including the first (default 3)
// --metrics-out PATH               write the run's metrics registry
//                                  (radio/mote/basestation counters, energy
//                                  stats) as JSON; a markdown summary is
//                                  printed to stdout
// --calibration-out PATH           write the predicted-vs-observed
//                                  calibration report (local replay of each
//                                  plan over the held-out test split) as
//                                  JSON; a per-planner regret and top-drift
//                                  summary is printed to stdout either way

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/query_signature.h"
#include "data/garden_gen.h"
#include "exec/batch_executor.h"
#include "exec/executor.h"
#include "fault/fault.h"
#include "obs/calibration.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "plan/compiled_plan.h"
#include "plan/plan_estimates.h"
#include "data/lab_gen.h"
#include "data/synthetic_gen.h"
#include "data/workload.h"
#include "net/basestation.h"
#include "opt/greedyseq.h"
#include "opt/naive.h"
#include "plan/plan_printer.h"
#include "prob/dataset_estimator.h"

using namespace caqp;

namespace {

[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "caqp_simulate: %s\n", msg.c_str());
  std::exit(1);
}

struct Config {
  std::string network = "garden";
  size_t motes = 5;
  size_t epochs = 2000;
  size_t max_splits = 5;
  double drop_prob = 0.0;
  size_t limit = 0;  // 0: continuous query
  FaultSpec fault;
  DegradationPolicy policy = DegradationPolicy::Retry(3);
  std::string metrics_out;
  std::string calibration_out;
};

/// Builds the trace and a representative query for the chosen network.
std::pair<Dataset, Query> MakeScenario(const Config& cfg) {
  if (cfg.network == "garden") {
    GardenDataOptions opts;
    opts.num_motes = cfg.motes;
    opts.epochs = 20000;
    Dataset data = GenerateGardenData(opts);
    const GardenAttrs attrs = ResolveGardenAttrs(data.schema());
    Conjunct preds;
    for (AttrId a : attrs.temperature) {
      preds.emplace_back(a, 5, 11);  // warm
    }
    for (AttrId a : attrs.humidity) {
      preds.emplace_back(a, 5, 11);  // humid
    }
    return {std::move(data), Query::Conjunction(std::move(preds))};
  }
  if (cfg.network == "lab") {
    LabDataOptions opts;
    opts.num_motes = std::max<size_t>(2, cfg.motes);
    opts.readings = 40000;
    Dataset data = GenerateLabData(opts);
    const LabAttrs attrs = ResolveLabAttrs(data.schema());
    return {std::move(data),
            Query::Conjunction({Predicate(attrs.light, 5, 15),
                                Predicate(attrs.temperature, 0, 7),
                                Predicate(attrs.humidity, 0, 7)})};
  }
  if (cfg.network == "synthetic") {
    SyntheticDataOptions opts;
    opts.n = 10;
    opts.gamma = 4;
    opts.sel = 0.6;
    opts.tuples = 20000;
    Dataset data = GenerateSyntheticData(opts);
    Query q = SyntheticAllExpensiveQuery(data.schema());
    return {std::move(data), std::move(q)};
  }
  Die("unknown --network " + cfg.network);
}

/// Runs dissemination + query for one plan; prints and returns total mote
/// energy (acquisition + radio).
double RunOnce(const char* label, const Plan& plan, const Schema& schema,
               const AcquisitionCostModel& cm, const Dataset& live,
               const Config& cfg) {
  Radio radio(Radio::Options{.cost_per_byte = 0.05,
                             .drop_probability = cfg.drop_prob});
  Basestation base(schema, cm, radio);
  std::vector<std::unique_ptr<Mote>> motes;
  std::vector<Mote*> ptrs;
  motes.push_back(std::make_unique<Mote>(
      0, schema, cm, [&live](size_t epoch, AttrId attr) {
        return live.at(static_cast<RowId>(epoch % live.num_rows()), attr);
      }));
  ptrs.push_back(motes.back().get());
  // A fresh injector per run replays the identical fault stream for every
  // planner, so the energy comparison stays apples-to-apples under faults.
  std::optional<FaultInjector> injector;
  if (cfg.fault.any()) {
    injector.emplace(cfg.fault);
    motes[0]->SetFaultInjector(&*injector);
    motes[0]->SetDegradationPolicy(cfg.policy);
  }
  const size_t installed = base.Disseminate(plan, ptrs);
  if (installed == 0) {
    std::printf("%-12s plan lost in transit (drop-prob too high?)\n", label);
    return 0.0;
  }

  if (cfg.limit > 0) {
    const auto res = base.RunLimitQuery(ptrs, cfg.limit, cfg.epochs);
    std::printf("%-12s LIMIT %zu: %zu matches in %zu epochs, "
                "acquisition=%.0f, mote energy=%.0f\n",
                label, cfg.limit, res.matches, res.epochs_run,
                res.acquisition_cost, motes[0]->energy().spent());
    return motes[0]->energy().spent();
  }
  const auto reports = base.RunContinuousQuery(ptrs, cfg.epochs);
  double acquisition = 0;
  size_t matches = 0, unknowns = 0;
  for (const auto& rep : reports) {
    acquisition += rep.acquisition_cost;
    matches += rep.matches;
    unknowns += rep.unknown_verdicts;
  }
  std::printf("%-12s %zu epochs: %zu matches, plan=%zuB, acquisition=%.0f, "
              "mote energy=%.0f\n",
              label, cfg.epochs, matches, PlanSizeBytes(plan), acquisition,
              motes[0]->energy().spent());
  if (injector) {
    std::printf("%-12s faults injected=%llu, unknown verdicts=%zu "
                "(%.2f%% of epochs)\n",
                "", static_cast<unsigned long long>(injector->injected()),
                unknowns,
                100.0 * static_cast<double>(unknowns) /
                    static_cast<double>(std::max<size_t>(1, cfg.epochs)));
  }
  return motes[0]->energy().spent();
}

/// Offline twin of the serve layer's calibration loop: compiles each
/// planner's plan with predicted side tables from the training estimator,
/// replays it over the held-out test split with a per-node ExecutionProfile,
/// and joins the two into a CalibrationReport. Prints per-planner
/// predicted-vs-realized cost (regret) and the highest-drift attributes.
/// Train and test come from the same trace, so large drift here means the
/// estimator itself is miscalibrated, not that the distribution moved.
obs::CalibrationReport CalibrateLocally(
    const std::vector<std::pair<const char*, const Plan*>>& plans,
    const Query& query, const Schema& schema, const AcquisitionCostModel& cm,
    CondProbEstimator& estimator, const Dataset& test) {
  obs::CalibrationAggregator agg(1);
  const uint64_t sig = QuerySignature(query);
  for (size_t i = 0; i < plans.size(); ++i) {
    CompiledPlan compiled = CompiledPlan::Compile(*plans[i].second);
    compiled.AttachEstimates(
        std::make_shared<PlanEstimates>(EstimatePlan(compiled, estimator, cm)));
    auto shared = std::make_shared<const CompiledPlan>(std::move(compiled));
    ExecutionProfile* profile = agg.Profile(
        0, obs::CalibrationKey{sig, 0, /*planner_fingerprint=*/i}, shared);
    // Columnar replay: per-node counters land under the same CompiledPlan
    // node indices as a per-tuple profiled ExecutePlan loop would record.
    std::vector<RowId> rows(test.num_rows());
    for (RowId r = 0; r < test.num_rows(); ++r) rows[r] = r;
    ColumnarBatchExecutor exec(*shared, test, cm);
    BatchExecOptions batch_options;
    batch_options.profile = profile;
    exec.Execute(rows, /*verdicts=*/nullptr, batch_options);
  }

  obs::CalibrationReport report = agg.Snapshot();
  std::printf("\ncalibration (replay over %zu test rows):\n", test.num_rows());
  for (const obs::PlanCalibration& pc : report.plans) {
    const char* label = "?";
    if (pc.key.planner_fingerprint < plans.size()) {
      label = plans[pc.key.planner_fingerprint].first;
    }
    std::printf("%-12s predicted %.2f/exec, realized %.2f/exec, "
                "regret %+.2f\n",
                label, pc.predicted_cost, pc.realized_mean_cost(), pc.regret());
  }
  std::vector<obs::AttrCalibration> ranked = report.attrs;
  std::sort(ranked.begin(), ranked.end(),
            [](const obs::AttrCalibration& a, const obs::AttrCalibration& b) {
              return a.drift() > b.drift();
            });
  std::printf("%-12s", "top drift:");
  const size_t top = std::min<size_t>(3, ranked.size());
  for (size_t i = 0; i < top; ++i) {
    const obs::AttrCalibration& a = ranked[i];
    std::printf("%s %s %.3f (pass %.2f obs vs %.2f pred)", i > 0 ? "," : "",
                schema.name(a.attr).c_str(), a.drift(), a.observed_pass_rate(),
                a.predicted_pass_rate());
  }
  std::printf("\n");
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Die("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--network") {
      cfg.network = next();
    } else if (arg == "--motes") {
      cfg.motes = static_cast<size_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--epochs") {
      cfg.epochs = static_cast<size_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--max-splits") {
      cfg.max_splits =
          static_cast<size_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--drop-prob") {
      cfg.drop_prob = std::strtod(next().c_str(), nullptr);
    } else if (arg == "--limit") {
      cfg.limit = static_cast<size_t>(std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--fault-profile") {
      const Result<FaultSpec> spec = FaultSpec::Parse(next());
      if (!spec.ok()) Die("bad --fault-profile: " + spec.status().message());
      cfg.fault = *spec;
    } else if (arg == "--policy") {
      const std::string p = next();
      if (p == "unknown") {
        cfg.policy = DegradationPolicy::UnknownVerdict();
      } else if (p == "retry") {
        cfg.policy = DegradationPolicy::Retry(cfg.policy.max_attempts);
      } else if (p == "abort") {
        cfg.policy = DegradationPolicy::Abort();
      } else {
        Die("unknown --policy " + p + " (want unknown|retry|abort)");
      }
    } else if (arg == "--max-retries") {
      const int n = static_cast<int>(std::strtol(next().c_str(), nullptr, 10));
      if (n < 1) Die("--max-retries must be >= 1");
      cfg.policy.max_attempts = n;
    } else if (arg == "--metrics-out") {
      cfg.metrics_out = next();
    } else if (arg == "--calibration-out") {
      cfg.calibration_out = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: see header comment of tools/caqp_simulate.cc\n");
      return 0;
    } else {
      Die("unknown flag " + arg);
    }
  }

  auto [data, query] = MakeScenario(cfg);
  const Schema& schema = data.schema();
  const auto [train, test] = data.SplitFraction(0.6);
  std::printf("network=%s attrs=%zu train=%zu test=%zu\n", cfg.network.c_str(),
              schema.num_attributes(), train.num_rows(), test.num_rows());
  std::printf("query: %s\n\n", query.ToString(schema).c_str());

  DatasetEstimator estimator(train);
  PerAttributeCostModel cost_model(schema);
  const SplitPointSet splits = SplitPointSet::FromLog10Spsf(
      schema, static_cast<double>(schema.num_attributes()));
  GreedySeqSolver greedyseq;

  NaivePlanner naive(estimator, cost_model);
  const Plan p_naive = naive.BuildPlan(query);

  GreedyPlanner::Options gopts;
  gopts.split_points = &splits;
  gopts.seq_solver = &greedyseq;
  gopts.max_splits = cfg.max_splits;
  GreedyPlanner heuristic(estimator, cost_model, gopts);
  const Plan p_heur = heuristic.BuildPlan(query);

  const double e_naive =
      RunOnce("naive", p_naive, schema, cost_model, test, cfg);
  const double e_heur =
      RunOnce("heuristic", p_heur, schema, cost_model, test, cfg);
  if (e_heur > 0 && e_naive > 0) {
    std::printf("\nenergy ratio naive/heuristic: %.2fx\n", e_naive / e_heur);
  }

  const obs::CalibrationReport cal = CalibrateLocally(
      {{"naive", &p_naive}, {"heuristic", &p_heur}}, query, schema, cost_model,
      estimator, test);
  if (!cfg.calibration_out.empty() &&
      obs::WriteFileOrComplain(cfg.calibration_out,
                               obs::CalibrationReportToJson(cal, &schema))) {
    std::printf("[wrote %s]\n", cfg.calibration_out.c_str());
  }

  if (!cfg.metrics_out.empty()) {
    const obs::MetricsRegistry& reg = obs::DefaultRegistry();
    if (obs::WriteFileOrComplain(cfg.metrics_out, obs::RegistryToJson(reg))) {
      std::printf("[wrote %s]\n", cfg.metrics_out.c_str());
    }
    std::printf("\n%s", obs::RegistryToMarkdown(reg).c_str());
  }
  return 0;
}
